/**
 * @file
 * Failure-injection tests: the invariant machinery must catch
 * corrupted hardware control state and misuse loudly (gem5 panic
 * semantics) rather than silently computing garbage.
 */

#include <gtest/gtest.h>

#include "exion/common/fixed_point.h"
#include "exion/conmerge/merged_tile.h"
#include "exion/conmerge/sort_buffer.h"
#include "exion/sim/sdue.h"
#include "exion/tensor/bitmask.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

using FailureDeathTest = ::testing::Test;

// These tests need the invariant checks to actually fire; a build
// configured with EXION_ASSERTIONS=OFF (the Release CI matrix entry)
// compiles EXION_ASSERT out, so they skip there.
#if EXION_ASSERTS_ENABLED
#define REQUIRE_ASSERTS() static_assert(true)
#else
#define REQUIRE_ASSERTS()                                                  \
    GTEST_SKIP() << "EXION_ASSERT compiled out (EXION_ASSERTIONS=OFF)"
#endif

TEST(FailureDeathTest, MatmulShapeMismatchPanics)
{
    REQUIRE_ASSERTS();
    Matrix a(2, 3), b(4, 2);
    EXPECT_DEATH(matmul(a, b), "matmul shape");
}

// Index is unsigned, so a caller's negative offset/count arrives as a
// huge value. The old `r0 + n <= rows` guards wrapped right past the
// bound; the slice family must reject these loudly, not read out of
// bounds.
TEST(FailureDeathTest, SliceRowsWrappedNegativeOffsetPanics)
{
    REQUIRE_ASSERTS();
    Matrix a(4, 4);
    EXPECT_DEATH(sliceRows(a, static_cast<Index>(-1), 2),
                 "sliceRows out of range");
}

TEST(FailureDeathTest, SliceRowsWrappedNegativeCountPanics)
{
    REQUIRE_ASSERTS();
    Matrix a(4, 4);
    EXPECT_DEATH(sliceRows(a, 1, static_cast<Index>(-2)),
                 "sliceRows out of range");
}

TEST(FailureDeathTest, SliceColsWrappedNegativeOffsetPanics)
{
    REQUIRE_ASSERTS();
    Matrix a(4, 4);
    EXPECT_DEATH(sliceCols(a, static_cast<Index>(-3), 1),
                 "sliceCols out of range");
}

TEST(FailureDeathTest, SliceBlockWrappedNegativePanics)
{
    REQUIRE_ASSERTS();
    Matrix a(4, 4);
    EXPECT_DEATH(sliceBlock(a, static_cast<Index>(-1), 1, 0, 1),
                 "sliceBlock out of range");
    EXPECT_DEATH(sliceBlock(a, 0, 1, 2, static_cast<Index>(-1)),
                 "sliceBlock out of range");
}

TEST(FailureDeathTest, PasteRowsWrappedNegativeOffsetPanics)
{
    REQUIRE_ASSERTS();
    Matrix a(4, 4);
    Matrix src(2, 4);
    EXPECT_DEATH(pasteRows(a, src, static_cast<Index>(-2)),
                 "pasteRows out of range");
}

TEST(FailureDeathTest, AddRowVectorToRowsWrappedNegativePanics)
{
    REQUIRE_ASSERTS();
    Matrix a(4, 4);
    Matrix row(1, 4);
    EXPECT_DEATH(
        addRowVectorToRows(a, row, static_cast<Index>(-1), 2),
        "row range");
    EXPECT_DEATH(
        addRowVectorToRows(a, row, 2, static_cast<Index>(-1)),
        "row range");
}

TEST(FailureDeathTest, BitmaskOutOfRangePanics)
{
    REQUIRE_ASSERTS();
    Bitmask2D mask(4, 4);
    EXPECT_DEATH(mask.set(4, 0, true), "out of range");
}

TEST(FailureDeathTest, DoubleOccupancyPanics)
{
    REQUIRE_ASSERTS();
    // Placing two elements into one DPU cell is a control-map bug the
    // tile must reject.
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x0001}});
    EXPECT_DEATH(tile.place(0, 0, 0, 9, 1), "occupied");
}

TEST(FailureDeathTest, CvConflictPanics)
{
    REQUIRE_ASSERTS();
    // Routing two different source rows over one lane's CV violates
    // the single-slot constraint.
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x0003}, ColumnEntry{1, 0x0003}});
    tile.place(4, 0, 2, 0, 1); // CV[4] = 2
    EXPECT_DEATH(tile.place(4, 1, 3, 1, 1), "CV slot");
}

TEST(FailureDeathTest, CorruptedTileFailsInvariantCheck)
{
    REQUIRE_ASSERTS();
    // An element claiming an unregistered origin must be caught.
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x0001}});
    tile.place(5, 0, 5, 42, 1); // slot 1 origin never registered
    EXPECT_DEATH(tile.checkInvariants(), "unregistered origin");
}

TEST(FailureDeathTest, SortBufferExhaustionPanics)
{
    REQUIRE_ASSERTS();
    SortBuffer buf(1);
    // Fill one entry per class (high-dense through extra) ...
    buf.push(ColumnEntry{0, 0xffff});
    buf.push(ColumnEntry{1, 0xfffe});
    buf.push(ColumnEntry{2, 0xfffc});
    buf.push(ColumnEntry{3, 0xfff8});
    buf.push(ColumnEntry{4, 0xfff0});
    // ... the sixth dense entry has nowhere to go.
    EXPECT_DEATH(buf.push(ColumnEntry{5, 0xffe0}), "exhausted");
}

TEST(FailureDeathTest, SdueRejectsShapeMismatch)
{
    REQUIRE_ASSERTS();
    Sdue sdue{DscParams{}};
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x0001}});
    Matrix input(16, 8), weight(9, 4), out(16, 4);
    EXPECT_DEATH(
        sdue.executeMergedTile(tile, input, weight, 0, out),
        "shape mismatch");
}

TEST(FailureDeathTest, SaturatingAddRejectsSillyWidths)
{
    REQUIRE_ASSERTS();
    EXPECT_DEATH(saturatingAdd(1, 1, 1), "accumulator width");
}

} // namespace
} // namespace exion
