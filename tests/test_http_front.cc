/**
 * @file
 * Tests for the HTTP front door's REST mapping.
 *
 * The golden half drives HttpFront::handle() with hand-built
 * HttpRequest values and a BufferResponseWriter — no sockets — and
 * pins the mapping contract: every RejectReason to its status code
 * and Retry-After header, malformed bodies to 400, unknown models to
 * 404, the job lifecycle (submit / status / cancel) and the SSE
 * event stream. The socket half runs the full server and verifies
 * the two streaming contracts that need a real connection: one
 * progress event per denoising iteration on the wire, and a client
 * disconnect mid-stream cancelling the running job.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>

#include "exion/model/config.h"
#include "exion/net/http_client.h"
#include "exion/net/http_server.h"
#include "exion/serve/batch_engine.h"
#include "exion/serve/http_front.h"

namespace exion
{
namespace
{

HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    HttpRequest req;
    req.method = method;
    req.target = target;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

/** Status code of the one-shot response captured by the writer. */
int
statusOf(const BufferResponseWriter &writer)
{
    const std::string &wire = writer.bytes();
    if (wire.size() < 12 || wire.compare(0, 9, "HTTP/1.1 ") != 0)
        return -1;
    return std::atoi(wire.c_str() + 9);
}

/** Value of a response header, or "" when absent. */
std::string
headerOf(const BufferResponseWriter &writer, const std::string &name)
{
    const std::string needle = "\r\n" + name + ": ";
    const size_t at = writer.bytes().find(needle);
    if (at == std::string::npos)
        return "";
    const size_t begin = at + needle.size();
    const size_t end = writer.bytes().find("\r\n", begin);
    return writer.bytes().substr(begin, end - begin);
}

std::string
bodyOf(const BufferResponseWriter &writer)
{
    const size_t at = writer.bytes().find("\r\n\r\n");
    return at == std::string::npos ? ""
                                   : writer.bytes().substr(at + 4);
}

long long
jsonInt(const std::string &body, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const size_t at = body.find(needle);
    if (at == std::string::npos)
        return -1;
    return std::atoll(body.c_str() + at + needle.size());
}

/** Engine + front over the tiny model, golden-testable. */
struct FrontFixture
{
    BatchEngine engine;
    HttpFront front;

    static BatchEngine::Options options(u64 maxQueued, u64 shedAt)
    {
        BatchEngine::Options opts;
        opts.workers = 2;
        opts.queueResults = false;
        opts.admission.maxQueuedPerClass = maxQueued;
        opts.admission.shedThreshold = shedAt;
        opts.admission.shedBelow = Priority::Normal;
        return opts;
    }

    static HttpFront::Options frontOptions()
    {
        HttpFront::Options opts;
        opts.sseHeartbeatSeconds = 0.05;
        return opts;
    }

    explicit FrontFixture(u64 maxQueued = 0, u64 shedAt = 0)
        : engine(options(maxQueued, shedAt)),
          front(engine, frontOptions())
    {
        engine.addModel(makeTinyConfig());
    }

    int handle(const HttpRequest &req, BufferResponseWriter &writer)
    {
        front.handle(req, writer);
        return statusOf(writer);
    }

    /** Submits one job, returns its id (asserts acceptance). */
    long long submit(const std::string &body =
                         "{\"benchmark\": \"MLD\"}")
    {
        BufferResponseWriter writer;
        EXPECT_EQ(handle(makeRequest("POST", "/v1/jobs", body),
                         writer),
                  201);
        return jsonInt(bodyOf(writer), "id");
    }

    /** Polls GET /v1/jobs/{id} until its state leaves queued/running. */
    std::string waitTerminal(long long id)
    {
        for (int spin = 0; spin < 5000; ++spin) {
            BufferResponseWriter writer;
            handle(makeRequest("GET",
                               "/v1/jobs/" + std::to_string(id)),
                   writer);
            const std::string body = bodyOf(writer);
            if (body.find("\"state\": \"queued\"") == std::string::npos
                && body.find("\"state\": \"running\"")
                    == std::string::npos)
                return body;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        return "<timeout>";
    }
};

// ----------------------------------------------------- plain routes

TEST(HttpFront, HealthzAndMetrics)
{
    FrontFixture fx;
    BufferResponseWriter health;
    EXPECT_EQ(fx.handle(makeRequest("GET", "/healthz"), health), 200);
    EXPECT_EQ(bodyOf(health), "ok\n");

    BufferResponseWriter metrics;
    EXPECT_EQ(fx.handle(makeRequest("GET", "/metrics"), metrics), 200);
    EXPECT_NE(bodyOf(metrics).find("exion_serve_accepted_total"),
              std::string::npos);
    EXPECT_NE(headerOf(metrics, "Content-Type").find("text/plain"),
              std::string::npos);
}

TEST(HttpFront, UnknownRoutesAre404)
{
    FrontFixture fx;
    for (const char *target :
         {"/", "/v2/jobs", "/v1/jobs/abc", "/v1/jobs/1/other",
          "/v1/jobs/999999"}) {
        BufferResponseWriter writer;
        EXPECT_EQ(fx.handle(makeRequest("GET", target), writer), 404)
            << target;
    }
}

TEST(HttpFront, WrongMethodsAre405WithAllow)
{
    FrontFixture fx;
    BufferResponseWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("PUT", "/v1/jobs"), writer), 405);
    EXPECT_EQ(headerOf(writer, "Allow"), "POST");

    BufferResponseWriter health;
    EXPECT_EQ(fx.handle(makeRequest("DELETE", "/healthz"), health),
              405);
    EXPECT_EQ(headerOf(health, "Allow"), "GET");
}

// ------------------------------------------------------- submission

TEST(HttpFront, SubmitAcceptReturns201WithLocation)
{
    FrontFixture fx;
    BufferResponseWriter writer;
    ASSERT_EQ(fx.handle(makeRequest(
                            "POST", "/v1/jobs",
                            "{\"benchmark\": \"MLD\", \"mode\": "
                            "\"exion\", \"seed\": 7, \"priority\": "
                            "\"high\", \"quantize\": true}"),
                        writer),
              201);
    const long long id = jsonInt(bodyOf(writer), "id");
    EXPECT_GT(id, 0);
    EXPECT_EQ(headerOf(writer, "Location"),
              "/v1/jobs/" + std::to_string(id));
    EXPECT_EQ(fx.front.jobCount(), 1u);
    // The submitted attributes come back in the status document.
    const std::string status = fx.waitTerminal(id);
    EXPECT_NE(status.find("\"state\": \"done\""), std::string::npos);
    EXPECT_NE(status.find("\"mode\": \"exion\""), std::string::npos);
    EXPECT_NE(status.find("\"priority\": \"high\""),
              std::string::npos);
    EXPECT_NE(status.find("\"quantize\": true"), std::string::npos);
    EXPECT_NE(status.find("\"seed\": 7"), std::string::npos);
}

TEST(HttpFront, MalformedBodiesAre400)
{
    FrontFixture fx;
    for (const char *body : {
             "",                               // not JSON at all
             "garbage",                        // ditto
             "[1, 2]",                         // not an object
             "{\"benchmark\": \"MLD\"",        // unterminated
             "{\"benchmark\": \"MLD\"} extra", // trailing content
             "{\"benchmark\": {\"x\": 1}}",    // nested value
             "{\"benchmark\": \"MLD\", \"benchmark\": \"MLD\"}",
             "{}",                        // missing benchmark
             "{\"benchmark\": 3}",        // wrong type
             "{\"seed\": -1, \"benchmark\": \"MLD\"}",
             "{\"seed\": 1.5, \"benchmark\": \"MLD\"}",
             "{\"mode\": \"warp\", \"benchmark\": \"MLD\"}",
             "{\"priority\": \"vip\", \"benchmark\": \"MLD\"}",
             "{\"quantize\": \"yes\", \"benchmark\": \"MLD\"}",
             "{\"deadline_seconds\": -2, \"benchmark\": \"MLD\"}",
             "{\"benchmark\": \"MLD\", \"typo_field\": 1}",
         }) {
        BufferResponseWriter writer;
        EXPECT_EQ(fx.handle(makeRequest("POST", "/v1/jobs", body),
                            writer),
                  400)
            << body;
    }
    EXPECT_EQ(fx.front.jobCount(), 0u);
}

TEST(HttpFront, UnknownModelNameIs404)
{
    FrontFixture fx;
    BufferResponseWriter writer;
    // Not a benchmark name at all.
    EXPECT_EQ(fx.handle(makeRequest("POST", "/v1/jobs",
                                    "{\"benchmark\": \"nonesuch\"}"),
                        writer),
              404);
    // A real benchmark that this engine has not registered: the
    // engine's own UnknownModel rejection, mapped to the same 404.
    BufferResponseWriter writer2;
    EXPECT_EQ(fx.handle(makeRequest("POST", "/v1/jobs",
                                    "{\"benchmark\": \"DiT\"}"),
                        writer2),
              404);
    EXPECT_NE(bodyOf(writer2).find("unknown-model"),
              std::string::npos);
    EXPECT_EQ(fx.front.jobCount(), 0u);
}

// --------------------------------------- admission refusal mapping

TEST(HttpFront, QueueFullIs429WithRetryAfter)
{
    FrontFixture fx(/*maxQueued=*/1, /*shedAt=*/0);
    fx.engine.pause(); // keep submissions queued
    ASSERT_GT(fx.submit(), 0);
    BufferResponseWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("POST", "/v1/jobs",
                                    "{\"benchmark\": \"MLD\"}"),
                        writer),
              429);
    const std::string retry = headerOf(writer, "Retry-After");
    ASSERT_FALSE(retry.empty());
    EXPECT_GE(std::atoi(retry.c_str()), 1);
    EXPECT_NE(bodyOf(writer).find("\"reason\": \"queue-full\""),
              std::string::npos);
    EXPECT_EQ(jsonInt(bodyOf(writer), "retry_after_seconds"),
              std::atoi(retry.c_str()));
    // The refused submission leaves no job behind.
    EXPECT_EQ(fx.front.jobCount(), 1u);
    fx.engine.resume();
    fx.engine.waitIdle();
}

TEST(HttpFront, LoadShedLowIs503WithRetryAfter)
{
    FrontFixture fx(/*maxQueued=*/8, /*shedAt=*/1);
    fx.engine.pause();
    ASSERT_GT(fx.submit(), 0); // backlog reaches the watermark
    BufferResponseWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("POST", "/v1/jobs",
                                    "{\"benchmark\": \"MLD\", "
                                    "\"priority\": \"low\"}"),
                        writer),
              503);
    EXPECT_FALSE(headerOf(writer, "Retry-After").empty());
    EXPECT_NE(bodyOf(writer).find("\"reason\": \"load-shed-low\""),
              std::string::npos);
    fx.engine.resume();
    fx.engine.waitIdle();
}

TEST(HttpFront, StoppedIs503AndClosesTheConnection)
{
    FrontFixture fx;
    fx.engine.shutdown();
    BufferResponseWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("POST", "/v1/jobs",
                                    "{\"benchmark\": \"MLD\"}"),
                        writer),
              503);
    EXPECT_TRUE(writer.connectionClose());
    EXPECT_NE(bodyOf(writer).find("shutting down"),
              std::string::npos);
    // A draining server tells the client not to retry here: no
    // Retry-After on Stopped.
    EXPECT_EQ(headerOf(writer, "Retry-After"), "");
}

// ---------------------------------------------------- job lifecycle

TEST(HttpFront, StatusReportsResultFields)
{
    FrontFixture fx;
    const long long id = fx.submit(
        "{\"benchmark\": \"MLD\", \"mode\": \"dense\"}");
    const std::string status = fx.waitTerminal(id);
    EXPECT_NE(status.find("\"state\": \"done\""), std::string::npos);
    EXPECT_GT(jsonInt(status, "output_rows"), 0);
    EXPECT_GT(jsonInt(status, "output_cols"), 0);
    EXPECT_GT(jsonInt(status, "ops_executed"), 0);
    const ModelConfig cfg = makeTinyConfig();
    EXPECT_EQ(jsonInt(status, "iterations_done"), cfg.iterations);
}

TEST(HttpFront, CancelQueuedJobReportsCancelled)
{
    FrontFixture fx;
    fx.engine.pause(); // the job stays queued, cancel always wins
    const long long id = fx.submit();
    BufferResponseWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("DELETE",
                                    "/v1/jobs/" + std::to_string(id)),
                        writer),
              200);
    EXPECT_NE(bodyOf(writer).find("\"cancelled\": true"),
              std::string::npos);
    fx.engine.resume();
    const std::string status = fx.waitTerminal(id);
    EXPECT_NE(status.find("\"state\": \"cancelled\""),
              std::string::npos);
    const EngineMetrics m = fx.engine.snapshot();
    EXPECT_EQ(m.cancelled(), 1u);
}

TEST(HttpFront, CancelFinishedJobReportsFinished)
{
    FrontFixture fx;
    const long long id = fx.submit();
    fx.waitTerminal(id);
    BufferResponseWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("DELETE",
                                    "/v1/jobs/" + std::to_string(id)),
                        writer),
              200);
    EXPECT_NE(bodyOf(writer).find("\"cancelled\": false"),
              std::string::npos);
    EXPECT_NE(bodyOf(writer).find("\"state\": \"finished\""),
              std::string::npos);
}

TEST(HttpFront, FinishedJobsAreEvicted)
{
    BatchEngine engine(FrontFixture::options(0, 0));
    engine.addModel(makeTinyConfig());
    HttpFront::Options opts;
    opts.sseHeartbeatSeconds = 0.05;
    opts.maxFinishedJobs = 2;
    HttpFront front(engine, opts);
    for (int i = 0; i < 6; ++i) {
        BufferResponseWriter writer;
        front.handle(makeRequest("POST", "/v1/jobs",
                                 "{\"benchmark\": \"MLD\"}"),
                     writer);
        ASSERT_EQ(statusOf(writer), 201);
    }
    engine.waitIdle();
    // One more submission triggers eviction of settled jobs.
    BufferResponseWriter writer;
    front.handle(makeRequest("POST", "/v1/jobs",
                             "{\"benchmark\": \"MLD\"}"),
                 writer);
    ASSERT_EQ(statusOf(writer), 201);
    EXPECT_LE(front.jobCount(), 3u);
    engine.waitIdle();
}

// -------------------------------------------------------------- SSE

TEST(HttpFront, SseStreamsOneEventPerIterationGolden)
{
    FrontFixture fx;
    const long long id = fx.submit();
    BufferResponseWriter writer;
    // handle() parks on the stream until the job finishes; the tiny
    // model makes that milliseconds.
    EXPECT_EQ(fx.handle(makeRequest("GET",
                                    "/v1/jobs/" + std::to_string(id)
                                        + "/events"),
                        writer),
              200);
    const std::string &wire = writer.bytes();
    EXPECT_NE(wire.find("Content-Type: text/event-stream"),
              std::string::npos);
    const ModelConfig cfg = makeTinyConfig();
    for (int i = 0; i < cfg.iterations; ++i)
        EXPECT_NE(wire.find("event: progress\ndata: {\"iteration\": "
                            + std::to_string(i) + "}"),
                  std::string::npos)
            << "iteration " << i;
    EXPECT_NE(wire.find("event: done"), std::string::npos);
    EXPECT_NE(wire.find("\"state\": \"done\""), std::string::npos);
    // The stream terminated cleanly (zero-length chunk).
    EXPECT_NE(wire.find("0\r\n\r\n"), std::string::npos);
}

/**
 * Writer whose sends still land in the buffer (the head and
 * heartbeats go out) but whose peerClosed() probe reports the client
 * gone — the shape of a real disconnect noticed between writes.
 */
class DepartedClientWriter : public BufferResponseWriter
{
  public:
    bool peerClosed() override { return true; }
};

TEST(HttpFront, SseDisconnectCancelsTheJobGolden)
{
    FrontFixture fx;
    fx.engine.pause(); // job never progresses; stream idles
    const long long id = fx.submit();
    DepartedClientWriter writer;
    EXPECT_EQ(fx.handle(makeRequest("GET",
                                    "/v1/jobs/" + std::to_string(id)
                                        + "/events"),
                        writer),
              200);
    fx.engine.resume();
    const std::string status = fx.waitTerminal(id);
    EXPECT_NE(status.find("\"state\": \"cancelled\""),
              std::string::npos);
}

// ------------------------------------------------- socket-level SSE

/** Full server over the front for the on-the-wire contracts. */
struct ServerFixture
{
    BatchEngine engine;
    HttpFront front;
    HttpServer server;

    ServerFixture()
        : engine(FrontFixture::options(0, 0)),
          front(engine, FrontFixture::frontOptions()),
          server(HttpServer::Options{},
                 [this](const HttpRequest &req, ResponseWriter &w) {
                     front.handle(req, w);
                 })
    {
        engine.addModel(makeTinyConfig());
        server.start();
    }
};

TEST(HttpFrontSocket, SseDeliversOneEventPerIterationOnTheWire)
{
    ServerFixture fx;
    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", fx.server.port());
    ASSERT_TRUE(conn.connected());
    HttpClientResponse resp;
    ASSERT_TRUE(conn.request("POST", "/v1/jobs", resp,
                             "{\"benchmark\": \"MLD\"}"));
    ASSERT_EQ(resp.status, 201);
    const long long id = jsonInt(resp.body, "id");

    HttpClientResponse head;
    ASSERT_TRUE(conn.startStream(
        "/v1/jobs/" + std::to_string(id) + "/events", head));
    ASSERT_EQ(head.status, 200);
    int progress = 0;
    bool done = false;
    std::string stream, data;
    while (conn.readStreamData(data)) {
        stream += data;
        data.clear();
    }
    size_t at;
    std::string pending = stream;
    while ((at = pending.find("\n\n")) != std::string::npos) {
        const std::string event = pending.substr(0, at);
        pending.erase(0, at + 2);
        if (event.rfind("event: progress", 0) == 0)
            ++progress;
        else if (event.rfind("event: done", 0) == 0)
            done = true;
    }
    EXPECT_EQ(progress, makeTinyConfig().iterations);
    EXPECT_TRUE(done);
}

TEST(HttpFrontSocket, ClientDisconnectMidStreamCancelsTheJob)
{
    ServerFixture fx;
    fx.engine.pause(); // the job stays queued; the stream heartbeats

    HttpConnection submitConn =
        HttpConnection::connect("127.0.0.1", fx.server.port());
    HttpClientResponse resp;
    ASSERT_TRUE(submitConn.request("POST", "/v1/jobs", resp,
                                   "{\"benchmark\": \"MLD\"}"));
    ASSERT_EQ(resp.status, 201);
    const long long id = jsonInt(resp.body, "id");

    HttpConnection streamConn =
        HttpConnection::connect("127.0.0.1", fx.server.port());
    HttpClientResponse head;
    ASSERT_TRUE(streamConn.startStream(
        "/v1/jobs/" + std::to_string(id) + "/events", head));
    ASSERT_EQ(head.status, 200);
    std::string data;
    ASSERT_TRUE(streamConn.readStreamData(data)); // stream is live
    // The client vanishes mid-stream; the next heartbeat notices
    // and cancels the queued job.
    streamConn.close();

    const std::string target = "/v1/jobs/" + std::to_string(id);
    bool cancelled = false;
    for (int spin = 0; spin < 200 && !cancelled; ++spin) {
        HttpClientResponse status;
        ASSERT_TRUE(
            submitConn.request("GET", target, status));
        cancelled = status.body.find("\"state\": \"cancelled\"")
            != std::string::npos;
        if (!cancelled)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(cancelled)
        << "job was not cancelled after client disconnect";
    fx.engine.resume();
    const EngineMetrics m = fx.engine.snapshot();
    EXPECT_EQ(m.cancelled(), 1u);
}

// ------------------------------------------- Retry-After round-trip

TEST(HttpClientResponseTest, RetryAfterSecondsParsesTheHeader)
{
    HttpClientResponse resp;
    EXPECT_EQ(resp.retryAfterSeconds(), -1); // absent

    resp.headers.emplace_back("retry-after", "7");
    EXPECT_EQ(resp.retryAfterSeconds(), 7);

    resp.headers.clear();
    resp.headers.emplace_back("retry-after", "0");
    EXPECT_EQ(resp.retryAfterSeconds(), 0);

    // HTTP-date form and other non-numeric values are not usable as
    // a sleep interval: report "no hint" rather than guessing.
    resp.headers.clear();
    resp.headers.emplace_back("retry-after",
                              "Fri, 07 Aug 2026 00:00:00 GMT");
    EXPECT_EQ(resp.retryAfterSeconds(), -1);

    resp.headers.clear();
    resp.headers.emplace_back("retry-after", "");
    EXPECT_EQ(resp.retryAfterSeconds(), -1);

    resp.headers.clear();
    resp.headers.emplace_back("retry-after", "99999999999999999999");
    EXPECT_EQ(resp.retryAfterSeconds(),
              std::numeric_limits<int>::max());
}

TEST(HttpFrontSocket, RetryAfterHintRoundTripsFromTheEngine)
{
    // A full engine whose 429 carries the engine's own backoff hint:
    // the client-side parse must recover exactly the value the front
    // derived from SubmitOutcome::suggestedBackoffSeconds.
    BatchEngine engine(FrontFixture::options(/*maxQueued=*/1,
                                             /*shedAt=*/0));
    HttpFront front(engine, FrontFixture::frontOptions());
    HttpServer server(HttpServer::Options{},
                      [&front](const HttpRequest &req,
                               ResponseWriter &w) {
                          front.handle(req, w);
                      });
    engine.addModel(makeTinyConfig());
    server.start();
    engine.pause(); // the first job stays queued, filling the class

    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.connected());
    HttpClientResponse first;
    ASSERT_TRUE(conn.request("POST", "/v1/jobs", first,
                             "{\"benchmark\": \"MLD\"}"));
    ASSERT_EQ(first.status, 201);

    // What the engine itself would suggest right now.
    SubmitOutcome probe;
    {
        ServeRequest req;
        req.benchmark = Benchmark::MLD;
        probe = engine.trySubmit(req);
    }
    ASSERT_FALSE(probe.accepted());
    const double hint = probe.suggestedBackoffSeconds;
    const int expected = hint <= 0.0 ? 1
        : static_cast<int>(std::max(1.0, std::ceil(hint)));

    HttpClientResponse refused;
    ASSERT_TRUE(conn.request("POST", "/v1/jobs", refused,
                             "{\"benchmark\": \"MLD\"}"));
    ASSERT_EQ(refused.status, 429);
    EXPECT_EQ(refused.retryAfterSeconds(), expected);
    // With no queue-wait samples yet the hint is the 10 ms floor,
    // which must surface as the minimum whole second.
    EXPECT_EQ(refused.retryAfterSeconds(), 1);

    engine.resume();
    engine.waitIdle();
}

} // namespace
} // namespace exion
