/**
 * @file
 * Tests for the calibrated synthetic mask generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "exion/accel/conmerge_estimator.h"
#include "exion/sparsity/mask_synth.h"

namespace exion
{
namespace
{

TEST(FfnMaskParams, BackgroundDensitySolvesTarget)
{
    FfnMaskParams p{0.05, 0.5, 0.02, 0.85};
    const double bg = p.backgroundDensity();
    const double achieved = p.hotColFraction * p.hotColDensity
        + (1.0 - p.deadColFraction - p.hotColFraction) * bg;
    EXPECT_NEAR(achieved, p.density, 1e-9);
}

TEST(FfnMask, HitsElementSparsity)
{
    for (Benchmark b : allBenchmarks()) {
        const FfnMaskParams p = ffnMaskParams(b);
        Rng rng(42);
        const Bitmask2D mask = synthFfnMask(512, 1024, p, rng);
        EXPECT_NEAR(1.0 - mask.sparsity(), p.density,
                    0.15 * p.density + 0.01)
            << benchmarkName(b);
    }
}

TEST(FfnMask, DeadColumnsAreEmpty)
{
    FfnMaskParams p{0.05, 0.6, 0.02, 0.85};
    Rng rng(7);
    const Bitmask2D mask = synthFfnMask(256, 2000, p, rng);
    Index empty = 0;
    for (Index c = 0; c < mask.cols(); ++c)
        empty += mask.columnEmpty(c) ? 1 : 0;
    // With 256 rows, background columns are essentially never empty.
    EXPECT_NEAR(static_cast<double>(empty) / 2000.0, 0.6, 0.05);
}

TEST(FfnMask, AnalyticCondenseMatchesEmpirical)
{
    const FfnMaskParams p = ffnMaskParams(Benchmark::StableDiffusion);
    Rng rng(11);
    const Index rows = 128;
    const Bitmask2D mask = synthFfnMask(rows, 4000, p, rng);
    Index nonempty = 0;
    for (Index c = 0; c < mask.cols(); ++c)
        nonempty += mask.columnEmpty(c) ? 0 : 1;
    const double empirical = static_cast<double>(nonempty) / 4000.0;
    const double analytic = analyticFfnCondenseRemaining(rows, p);
    EXPECT_NEAR(analytic, empirical, 0.03);
}

TEST(FfnMask, CalibrationMatchesPaperAnchors)
{
    // MLD condensing leaves ~13.8% of columns (Fig. 8) at its small
    // row count; SD leaves ~77.4% at 4096 rows.
    const double mld = analyticFfnCondenseRemaining(
        8, ffnMaskParams(Benchmark::MLD));
    EXPECT_NEAR(mld, 0.138, 0.05);
    const double sd = analyticFfnCondenseRemaining(
        4096, ffnMaskParams(Benchmark::StableDiffusion));
    EXPECT_NEAR(sd, 0.774, 0.03);
}

TEST(ScoreMask, OneHotRowsAreEmpty)
{
    ScoreMaskParams p{0.3, 0.4, 0.8};
    Rng rng(13);
    const Bitmask2D mask = synthScoreMask(400, 64, p, rng);
    Index empty_rows = 0;
    for (Index r = 0; r < mask.rows(); ++r)
        empty_rows += mask.rowOnes(r) == 0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(empty_rows) / 400.0, 0.4, 0.06);
}

TEST(ScoreMask, NonOneHotRowsKeepK)
{
    ScoreMaskParams p{0.25, 0.0, 0.8};
    Rng rng(17);
    const Bitmask2D mask = synthScoreMask(64, 80, p, rng);
    const Index keep_k = static_cast<Index>(std::ceil(0.25 * 80));
    for (Index r = 0; r < mask.rows(); ++r)
        EXPECT_EQ(mask.rowOnes(r), keep_k);
}

TEST(ScoreMask, ZipfMakesColumnPopularitySkewed)
{
    ScoreMaskParams p{0.1, 0.0, 1.2};
    Rng rng(19);
    const Bitmask2D mask = synthScoreMask(256, 128, p, rng);
    std::vector<u64> counts(mask.cols());
    for (Index c = 0; c < mask.cols(); ++c)
        counts[c] = mask.columnOnes(c);
    std::sort(counts.begin(), counts.end());
    // The hottest decile attracts far more queries than the coldest.
    u64 cold = 0, hot = 0;
    for (Index i = 0; i < 13; ++i) {
        cold += counts[i];
        hot += counts[counts.size() - 1 - i];
    }
    EXPECT_GT(hot, 4 * (cold + 1));
}

TEST(ScoreMask, DenseKeepPathWorks)
{
    ScoreMaskParams p{0.8, 0.0, 0.8};
    Rng rng(23);
    const Bitmask2D mask = synthScoreMask(32, 64, p, rng);
    const Index keep_k = static_cast<Index>(std::ceil(0.8 * 64));
    for (Index r = 0; r < mask.rows(); ++r)
        EXPECT_EQ(mask.rowOnes(r), keep_k);
}

TEST(ScoreMask, AnalyticCondenseReasonable)
{
    ScoreMaskParams p{0.05, 0.3, 0.8};
    const double remaining = analyticScoreCondenseRemaining(16, 256, p);
    EXPECT_GT(remaining, 0.1);
    EXPECT_LT(remaining, 1.0);
    // More rows -> more columns touched.
    EXPECT_GT(analyticScoreCondenseRemaining(256, 256, p), remaining);
}

} // namespace
} // namespace exion
