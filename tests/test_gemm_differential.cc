/**
 * @file
 * Differential tests of the Blocked GEMM backend against Reference
 * through every executor path: each (benchmark x mode x quantize)
 * pipeline run, a cohort-of-N stacked run, and the serving engine
 * end-to-end must produce maxAbsDiff == 0 — the backend is a pure
 * wall-clock knob, never a numerics knob.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "exion/model/pipeline.h"
#include "exion/serve/batch_engine.h"
#include "exion/sparsity/cohort_executor.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

/** Bitwise equality: operator== would let -0.0 pass as +0.0. */
bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols()
        && (a.size() == 0
            || std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)) == 0);
}

SparseExecutor::Options
optionsFor(const ModelConfig &cfg, ExecMode mode, bool quantize,
           GemmBackend backend)
{
    const bool ffnr =
        mode == ExecMode::FfnReuseOnly || mode == ExecMode::Exion;
    const bool ep = mode == ExecMode::EpOnly || mode == ExecMode::Exion;
    SparseExecutor::Options opt =
        SparseExecutor::fromConfig(cfg, ffnr, ep, quantize);
    opt.gemm = backend;
    return opt;
}

Matrix
runPipeline(const DiffusionPipeline &pipe, ExecMode mode, bool quantize,
            GemmBackend backend, u64 seed)
{
    if (mode == ExecMode::Dense) {
        DenseExecutor exec(quantize, backend);
        return pipe.run(exec, seed);
    }
    SparseExecutor exec(optionsFor(pipe.config(), mode, quantize,
                                   backend));
    return pipe.run(exec, seed);
}

/** Short runs that still cross a dense/sparse FFN-Reuse boundary. */
ModelConfig
shortConfig(Benchmark b)
{
    ModelConfig cfg = makeConfig(b, Scale::Reduced);
    cfg.iterations = 3;
    cfg.ffnReuse.denseInterval = 1;
    return cfg;
}

/**
 * Every benchmark, every ablation mode, float and INT12: Blocked and
 * Reference executors must agree to the last bit over full pipeline
 * runs (randomised latents via the fixed per-case seed).
 */
TEST(GemmDifferentialTest, AllBenchmarksModesQuantLevels)
{
    const Benchmark benchmarks[] = {
        Benchmark::MLD,         Benchmark::MDM,
        Benchmark::EDGE,        Benchmark::MakeAnAudio,
        Benchmark::StableDiffusion, Benchmark::DiT,
        Benchmark::VideoCrafter2,
    };
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::EpOnly,
                              ExecMode::FfnReuseOnly, ExecMode::Exion};
    u64 seed = 9000;
    for (Benchmark b : benchmarks) {
        const ModelConfig cfg = shortConfig(b);
        const DiffusionPipeline pipe(cfg);
        for (ExecMode mode : modes) {
            for (bool quantize : {false, true}) {
                SCOPED_TRACE(cfg.name + " mode " + execModeName(mode)
                             + (quantize ? " int12" : " float"));
                ++seed;
                const Matrix ref = runPipeline(
                    pipe, mode, quantize, GemmBackend::Reference, seed);
                const Matrix blk = runPipeline(
                    pipe, mode, quantize, GemmBackend::Blocked, seed);
                ASSERT_EQ(maxAbsDiff(ref, blk), 0.0);
                ASSERT_TRUE(bitIdentical(ref, blk));
            }
        }
    }
}

/**
 * Cohort-of-N on the Blocked backend vs solo runs on Reference: the
 * two orthogonal bit-identity guarantees (stacking and backend) must
 * compose.
 */
TEST(GemmDifferentialTest, CohortStackedBlockedMatchesSoloReference)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const DiffusionPipeline pipe(cfg);
    const Index n = 5;
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::EpOnly,
                              ExecMode::FfnReuseOnly, ExecMode::Exion};
    for (ExecMode mode : modes) {
        SCOPED_TRACE(execModeName(mode));
        CohortExecutor exec(optionsFor(cfg, mode, /*quantize=*/false,
                                       GemmBackend::Blocked));
        CohortRun run(pipe, exec);
        std::vector<Index> slots;
        for (Index i = 0; i < n; ++i)
            slots.push_back(run.join(4200 + 31 * i));
        while (!run.done())
            run.step();
        for (Index i = 0; i < n; ++i) {
            SCOPED_TRACE(::testing::Message() << "member " << i);
            const Matrix solo =
                runPipeline(pipe, mode, false, GemmBackend::Reference,
                            4200 + 31 * i);
            const Matrix stacked = run.takeResult(slots[i]);
            ASSERT_EQ(maxAbsDiff(solo, stacked), 0.0);
            ASSERT_TRUE(bitIdentical(solo, stacked));
        }
    }
}

/**
 * Engine end-to-end: identical request streams through a
 * Reference-backend engine and a Blocked-backend engine (with cohort
 * batching on, so the tall fast path is exercised) must deliver
 * bit-identical outputs and identical op accounting.
 */
TEST(GemmDifferentialTest, EngineBlockedMatchesReferenceEngine)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    std::vector<ServeRequest> requests;
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::Exion,
                              ExecMode::FfnReuseOnly, ExecMode::EpOnly};
    for (u64 i = 0; i < 8; ++i) {
        ServeRequest req;
        req.id = i;
        req.benchmark = cfg.benchmark;
        req.mode = modes[i % 4];
        req.quantize = i % 5 == 4;
        req.noiseSeed = 7700 + i;
        requests.push_back(req);
    }

    const auto run_with = [&](GemmBackend backend) {
        BatchEngine::Options opts;
        opts.workers = 2;
        opts.cohortBatching = true;
        opts.gemmBackend = backend;
        BatchEngine engine(opts);
        engine.addModel(cfg);
        return engine.runBatch(requests);
    };
    const std::vector<RequestResult> ref =
        run_with(GemmBackend::Reference);
    const std::vector<RequestResult> blk =
        run_with(GemmBackend::Blocked);
    ASSERT_EQ(ref.size(), blk.size());
    for (Index i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "request " << i);
        ASSERT_TRUE(ref[i].ok());
        ASSERT_TRUE(blk[i].ok());
        ASSERT_EQ(maxAbsDiff(ref[i].output, blk[i].output), 0.0);
        ASSERT_TRUE(bitIdentical(ref[i].output, blk[i].output));
        EXPECT_EQ(ref[i].stats.totalDense(), blk[i].stats.totalDense());
        EXPECT_EQ(ref[i].stats.totalExecuted(),
                  blk[i].stats.totalExecuted());
    }
}

} // namespace
} // namespace exion
