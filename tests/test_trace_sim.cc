/**
 * @file
 * Tests for the ISA, program builder and trace-driven top controller,
 * including the pin between trace execution and the closed-form cycle
 * model.
 */

#include <gtest/gtest.h>

#include "exion/sim/program_builder.h"
#include "exion/sim/top_controller.h"

namespace exion
{
namespace
{

DramModel
testDram()
{
    return DramModel(DramType::Lpddr5, 51.0);
}

TEST(Isa, Disassembly)
{
    Instr mmul;
    mmul.op = Opcode::MmulDense;
    mmul.m = 16;
    mmul.k = 24;
    mmul.n = 16;
    EXPECT_EQ(mmul.toString(), "MMUL.D 16x24x16");

    Instr load;
    load.op = Opcode::LoadWeight;
    load.bytes = 1024;
    EXPECT_EQ(load.toString(), "LD.WT bytes=1024");
    EXPECT_EQ(opcodeName(Opcode::Sync), "SYNC");
}

TEST(ProgramBuilder, DenseMmulShape)
{
    ProgramBuilder builder{DscParams{}};
    builder.addDenseMmul(32, 64, 48);
    const Program &prog = builder.program();
    ASSERT_EQ(prog.size(), 4u);
    EXPECT_EQ(prog[0].op, Opcode::LoadInput);
    EXPECT_EQ(prog[0].bytes, ProgramBuilder::int12Bytes(32 * 64));
    EXPECT_EQ(prog[1].op, Opcode::LoadWeight);
    EXPECT_EQ(prog[2].op, Opcode::MmulDense);
    EXPECT_EQ(prog[3].op, Opcode::StoreOutput);
}

TEST(TopController, InstrCyclesMatchComponents)
{
    const DscParams params;
    TopController tc(params, testDram());

    Instr mmul;
    mmul.op = Opcode::MmulDense;
    mmul.m = 32;
    mmul.k = 48;
    mmul.n = 32;
    EXPECT_EQ(tc.instrCycles(mmul),
              denseMmulCycles(params, 32, 48, 32));

    Instr merged;
    merged.op = Opcode::MmulMerged;
    merged.tiles = 5;
    merged.k = 48;
    EXPECT_EQ(tc.instrCycles(merged), 5u * 2u);

    Instr sync;
    sync.op = Opcode::Sync;
    EXPECT_EQ(tc.instrCycles(sync), 0u);
}

TEST(TopController, ComputeOnlyProgramSumsCycles)
{
    const DscParams params;
    TopController tc(params, testDram());
    Program prog;
    Instr mmul;
    mmul.op = Opcode::MmulDense;
    mmul.m = 64;
    mmul.k = 96;
    mmul.n = 64;
    prog.push_back(mmul);
    prog.push_back(mmul);
    const TraceStats stats = tc.run(prog);
    EXPECT_EQ(stats.totalCycles,
              2 * denseMmulCycles(params, 64, 96, 64));
    EXPECT_EQ(stats.sdueBusy, stats.totalCycles);
    EXPECT_EQ(stats.stallCycles, 0u);
    EXPECT_EQ(stats.instructions, 2u);
}

TEST(TopController, DmaStallsWhenComputeCannotHideIt)
{
    const DscParams params;
    TopController tc(params, testDram());
    // Huge load before tiny compute: the transfer cannot hide.
    ProgramBuilder builder(params);
    builder.addDenseMmul(16, 24, 16); // 1-cycle sweep
    const TraceStats stats = tc.run(builder.program());
    EXPECT_GT(stats.stallCycles, 0u);
    EXPECT_GT(stats.totalCycles, 1u);
    EXPECT_EQ(stats.sdueBusy, 1u);
}

TEST(TopController, ShadowUnitsHideBehindCompute)
{
    const DscParams params;
    TopController tc(params, testDram());
    Program prog;
    Instr pred;
    pred.op = Opcode::EpPredict;
    pred.m = 32;
    pred.k = 64;
    pred.n = 4;
    prog.push_back(pred);
    Instr mmul;
    mmul.op = Opcode::MmulDense;
    mmul.m = 512;
    mmul.k = 512;
    mmul.n = 512;
    prog.push_back(mmul);
    const TraceStats stats = tc.run(prog);
    // The small prediction fully hides behind the large sweep.
    EXPECT_EQ(stats.totalCycles, stats.sdueBusy);
    EXPECT_GT(stats.epreBusy, 0u);
}

TEST(TopController, SyncDrainsShadowWork)
{
    const DscParams params;
    TopController tc(params, testDram());
    Program prog;
    Instr pred;
    pred.op = Opcode::EpPredict;
    pred.m = 256;
    pred.k = 512;
    pred.n = 8;
    prog.push_back(pred);
    Instr sync;
    sync.op = Opcode::Sync;
    prog.push_back(sync);
    const TraceStats stats = tc.run(prog);
    // Nothing to hide behind: the sync pays the full prediction.
    EXPECT_EQ(stats.totalCycles, stats.epreBusy);
    EXPECT_GT(stats.totalCycles, 0u);
}

TEST(TopController, MergedMmulAccountsGating)
{
    const DscParams params;
    TopController tc(params, testDram());
    Program prog;
    Instr merged;
    merged.op = Opcode::MmulMerged;
    merged.tiles = 4;
    merged.k = 24;
    merged.occupancy = 0.25;
    prog.push_back(merged);
    const TraceStats stats = tc.run(prog);
    EXPECT_EQ(stats.totalCycles, 4u);
    const u64 total_dpu = stats.activeDpuCycles + stats.gatedDpuCycles;
    EXPECT_EQ(total_dpu, 4u * 256u);
    EXPECT_NEAR(static_cast<double>(stats.activeDpuCycles) / total_dpu,
                0.25, 1e-9);
}

/** Property: a pipeline of balanced stages hides most transfers. */
class OverlapSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(OverlapSweep, BiggerComputeHidesMoreDma)
{
    const DscParams params;
    TopController tc(params, testDram());
    const Index dim = 128 << GetParam(); // 128, 256, 512
    ProgramBuilder builder(params);
    for (int i = 0; i < 4; ++i)
        builder.addDenseMmul(dim, dim, dim);
    const TraceStats stats = tc.run(builder.program());
    const double stall_fraction =
        static_cast<double>(stats.stallCycles) / stats.totalCycles;
    // Compute grows as dim^3, transfers as dim^2: stalls shrink.
    if (GetParam() == 2) {
        EXPECT_LT(stall_fraction, 0.35);
    }
    EXPECT_EQ(stats.instructions, 16u);
}

INSTANTIATE_TEST_SUITE_P(Dims, OverlapSweep, ::testing::Range(0, 3));

} // namespace
} // namespace exion
