/**
 * @file
 * Tests for the combined EXION execution strategy (FFN-Reuse + EP).
 */

#include <gtest/gtest.h>

#include "exion/common/rng.h"
#include "exion/metrics/metrics.h"
#include "exion/model/pipeline.h"
#include "exion/sparsity/sparse_executor.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

SparseExecutor::Options
baseOptions()
{
    SparseExecutor::Options opt;
    opt.useFfnReuse = false;
    opt.useEp = false;
    opt.quantize = false;
    opt.ffnReuse = {3, 0.9};
    opt.ep = {0.5, 0.5};
    return opt;
}

TEST(SparseExecutor, DisabledFeaturesMatchDense)
{
    Rng rng(1);
    TransformerBlock blk(0, 32, 4, 4, false, rng);
    Matrix x(10, 32);
    x.fillNormal(rng, 0.0f, 1.0f);

    DenseExecutor dense;
    SparseExecutor sparse(baseOptions());
    EXPECT_EQ(blk.forward(x, dense), blk.forward(x, sparse));
}

TEST(SparseExecutor, EpKeepAllMatchesDenseClosely)
{
    // k = 1 and an unreachable q_th disable all skips; the only
    // difference is the kept-position arithmetic path.
    Rng rng(2);
    TransformerBlock blk(0, 32, 4, 4, false, rng);
    Matrix x(12, 32);
    x.fillNormal(rng, 0.0f, 1.0f);

    auto opt = baseOptions();
    opt.useEp = true;
    opt.ep = {1e9, 1.0};
    DenseExecutor dense;
    SparseExecutor sparse(opt);
    const Matrix a = blk.forward(x, dense);
    const Matrix b = blk.forward(x, sparse);
    EXPECT_LT(relativeError(a, b), 1e-4);
}

TEST(SparseExecutor, EpSkipsReduceExecutedOps)
{
    Rng rng(3);
    TransformerBlock blk(0, 32, 4, 4, false, rng);
    Matrix x(24, 32);
    x.fillNormal(rng, 0.0f, 1.0f);

    auto opt = baseOptions();
    opt.useEp = true;
    opt.ep = {0.4, 0.25};
    SparseExecutor sparse(opt);
    blk.forward(x, sparse);
    const ExecStats &s = sparse.stats();
    EXPECT_LT(s.attnOpsExecuted, s.attnOpsDense);
    EXPECT_LE(s.qkvOpsExecuted, s.qkvOpsDense);
    EXPECT_GT(s.scoreSparsitySamples, 0u);
    EXPECT_GT(s.meanScoreSparsity(), 0.4);
}

TEST(SparseExecutor, EpOutputStaysClose)
{
    Rng rng(4);
    TransformerBlock blk(0, 32, 4, 4, false, rng);
    Matrix x(16, 32);
    x.fillNormal(rng, 0.0f, 1.0f);

    auto opt = baseOptions();
    opt.useEp = true;
    opt.ep = {2.0, 0.6}; // moderate pruning
    DenseExecutor dense;
    SparseExecutor sparse(opt);
    const Matrix a = blk.forward(x, dense);
    const Matrix b = blk.forward(x, sparse);
    // Top-k keeps the softmax mass carriers; outputs stay correlated.
    EXPECT_GT(cosineSimilarity(a, b), 0.98);
}

TEST(SparseExecutor, ScoreMaskObserverSeesOneMaskPerHead)
{
    Rng rng(5);
    TransformerBlock blk(3, 32, 4, 4, false, rng);
    Matrix x(8, 32);
    x.fillNormal(rng, 0.0f, 1.0f);

    auto opt = baseOptions();
    opt.useEp = true;
    SparseExecutor sparse(opt);
    int masks = 0;
    sparse.observers.onScoreMask = [&](int block, int head,
                                       const Bitmask2D &keep) {
        EXPECT_EQ(block, 3);
        EXPECT_LT(head, 4);
        EXPECT_EQ(keep.rows(), 8u);
        EXPECT_EQ(keep.cols(), 8u);
        ++masks;
    };
    blk.forward(x, sparse);
    EXPECT_EQ(masks, 4);
}

TEST(SparseExecutor, FullPipelineAllOptimisations)
{
    const ModelConfig cfg = makeTinyConfig(8, 32, 2, 12);
    DiffusionPipeline pipe(cfg);

    DenseExecutor vanilla;
    const Matrix ref = pipe.run(vanilla, 7);

    auto opt = SparseExecutor::fromConfig(cfg, true, true, false);
    opt.ep = {1.0, 0.6};
    SparseExecutor exion(opt);
    const Matrix out = pipe.run(exion, 7);

    EXPECT_GT(psnr(ref, out), 15.0);
    EXPECT_GT(cosineSimilarity(ref, out), 0.9);

    const ExecStats &s = exion.stats();
    EXPECT_LT(s.totalExecuted(), s.totalDense());
    EXPECT_GT(s.ffnSparsitySamples, 0u);
}

TEST(SparseExecutor, AblationOrderingOnWork)
{
    // More optimisations -> fewer executed ops, same dense baseline.
    const ModelConfig cfg = makeTinyConfig(8, 32, 2, 8);
    auto run_with = [&](bool ffnr, bool ep) {
        DiffusionPipeline pipe(cfg);
        auto opt = SparseExecutor::fromConfig(cfg, ffnr, ep, false);
        opt.ep = {0.7, 0.4};
        opt.ffnReuse = {3, 0.9};
        SparseExecutor exec(opt);
        pipe.run(exec, 7);
        return exec.stats();
    };
    const ExecStats base = run_with(false, false);
    const ExecStats ep_only = run_with(false, true);
    const ExecStats ffnr_only = run_with(true, false);
    const ExecStats all = run_with(true, true);

    EXPECT_EQ(base.totalDense(), all.totalDense());
    EXPECT_LT(ep_only.totalExecuted(), base.totalExecuted());
    EXPECT_LT(ffnr_only.totalExecuted(), base.totalExecuted());
    EXPECT_LT(all.totalExecuted(), ep_only.totalExecuted());
    EXPECT_LT(all.totalExecuted(), ffnr_only.totalExecuted());
}

TEST(SparseExecutor, QuantizedVariantStillAccurate)
{
    const ModelConfig cfg = makeTinyConfig(8, 32, 2, 8);
    DiffusionPipeline pipe(cfg);
    DenseExecutor vanilla;
    const Matrix ref = pipe.run(vanilla, 7);

    auto opt = SparseExecutor::fromConfig(cfg, true, true, true);
    opt.ep = {1.0, 0.6};
    SparseExecutor exion(opt);
    const Matrix out = pipe.run(exion, 7);
    EXPECT_GT(psnr(ref, out), 12.0);
}

TEST(SparseExecutor, TsLodNotWorseThanLodOnPipeline)
{
    // Fig. 15's system-level claim. With our untrained (diffuse)
    // attention the end-to-end margin is small and seed-dependent,
    // so the pipeline check is non-inferiority; the decisive
    // mechanism test (ranking accuracy) lives in test_log_domain and
    // bench_fig15's direct-measurement table.
    const ModelConfig cfg = makeTinyConfig(8, 32, 2, 10);
    DiffusionPipeline pipe(cfg);
    DenseExecutor vanilla;
    const Matrix ref = pipe.run(vanilla, 7);

    auto run_mode = [&](LodMode mode) {
        auto opt = SparseExecutor::fromConfig(cfg, false, true, false,
                                              mode);
        opt.ep = {0.8, 0.3};
        SparseExecutor exec(opt);
        return pipe.run(exec, 7);
    };
    const double psnr_lod = psnr(ref, run_mode(LodMode::Single));
    const double psnr_ts = psnr(ref, run_mode(LodMode::TwoStep));
    EXPECT_GT(psnr_ts, psnr_lod - 1.5);
    EXPECT_GT(psnr_ts, 10.0);
}

} // namespace
} // namespace exion
