/**
 * @file
 * Unit tests for the ThreadPool: results, priority scheduling, FIFO
 * ordering within a priority, exception propagation, deterministic
 * seeded tasks and shutdown behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exion/common/threadpool.h"

namespace exion
{
namespace
{

TEST(ThreadPool, ReturnsResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, WorkerCountClamped)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3);
    ThreadPool defaulted(0);
    EXPECT_GE(defaulted.workerCount(), 1);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(
            pool.submit([i, &order]() { order.push_back(i); }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

/**
 * Holds the pool's single worker inside a task until release() so
 * tasks submitted meanwhile pile up in the ready queue and their
 * execution order exposes the scheduler's choices.
 */
class WorkerGate
{
  public:
    explicit WorkerGate(ThreadPool &pool)
    {
        blocker_ = pool.submit([this]() {
            started_.set_value();
            gate_.get_future().wait();
        });
        // Only return once the worker holds the blocker, so nothing
        // submitted afterwards can start before release().
        started_.get_future().wait();
    }

    /**
     * Joins the blocker task: the lambda captures this stack object,
     * so the gate must outlive the worker's last touch of it.
     */
    ~WorkerGate()
    {
        release();
        if (blocker_.valid())
            blocker_.get();
    }

    void
    release()
    {
        if (!released_) {
            released_ = true;
            gate_.set_value();
        }
    }

    void wait() { blocker_.get(); }

  private:
    std::promise<void> started_;
    std::promise<void> gate_;
    std::future<void> blocker_;
    bool released_ = false;
};

TEST(ThreadPool, HigherPriorityRunsFirst)
{
    ThreadPool pool(1);
    WorkerGate gate(pool);

    std::vector<int> order;
    std::vector<std::future<void>> futures;
    const i64 priorities[] = {0, 5, -3, 9, 5, 1};
    for (int i = 0; i < 6; ++i)
        futures.push_back(pool.submit(
            [i, &order]() { order.push_back(i); }, priorities[i]));

    gate.release();
    for (auto &f : futures)
        f.get();

    // Priority descending; the two priority-5 tasks keep FIFO order.
    const std::vector<int> expected = {3, 1, 4, 5, 0, 2};
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, EqualPrioritiesKeepSubmissionOrder)
{
    ThreadPool pool(1);
    WorkerGate gate(pool);

    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit(
            [i, &order]() { order.push_back(i); }, /*priority=*/7));

    gate.release();
    for (auto &f : futures)
        f.get();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PriorityInversionRegression)
{
    // A low-priority long job submitted first must not delay a
    // high-priority job that arrives while work is still queued.
    ThreadPool pool(1);
    WorkerGate gate(pool);

    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(pool.submit(
            [i, &order]() {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                order.push_back(i);
            },
            /*priority=*/-1));
    futures.push_back(
        pool.submit([&order]() { order.push_back(100); },
                    /*priority=*/10));

    gate.release();
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order.front(), 100)
        << "high-priority task ran behind queued low-priority work";
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);

    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, SeededTasksAreDeterministicAcrossWorkerCounts)
{
    const auto draw_all = [](int workers) {
        ThreadPool pool(workers, /*seed=*/99);
        std::vector<std::future<u64>> futures;
        for (int i = 0; i < 16; ++i)
            futures.push_back(
                pool.submitSeeded([](Rng &rng) { return rng.next(); }));
        std::vector<u64> draws;
        for (auto &f : futures)
            draws.push_back(f.get());
        return draws;
    };
    EXPECT_EQ(draw_all(1), draw_all(4));
}

TEST(ThreadPool, SeededTasksAreDeterministicUnderPriorities)
{
    // Seeds are keyed by submission index, so reordering execution
    // with priorities must not change which task gets which draw.
    const auto draw_all = [](bool reversed_priorities) {
        ThreadPool pool(2, /*seed=*/1234);
        std::vector<std::future<u64>> futures;
        for (int i = 0; i < 16; ++i) {
            const i64 prio = reversed_priorities ? -i : i;
            futures.push_back(pool.submitSeeded(
                [](Rng &rng) { return rng.next(); }, prio));
        }
        std::vector<u64> draws;
        for (auto &f : futures)
            draws.push_back(f.get());
        return draws;
    };
    EXPECT_EQ(draw_all(false), draw_all(true));
}

TEST(ThreadPool, SeededTasksDifferByIndex)
{
    ThreadPool pool(1, /*seed=*/5);
    const u64 a =
        pool.submitSeeded([](Rng &rng) { return rng.next(); }).get();
    const u64 b =
        pool.submitSeeded([](Rng &rng) { return rng.next(); }).get();
    EXPECT_NE(a, b);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&done]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++done;
            });
        pool.shutdown();
        EXPECT_EQ(done.load(), 100);
    }
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done]() { ++done; });
    }
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownFailsLoudly)
{
    // Regression: a task accepted after shutdown would never run and
    // its future would deadlock on get(). It must throw instead.
    ThreadPool pool(2);
    pool.submit([]() {}).get();
    pool.shutdown();
    EXPECT_THROW(pool.submit([]() { return 1; }), ThreadPoolStopped);
    EXPECT_THROW(pool.submitSeeded([](Rng &) { return 1; }),
                 ThreadPoolStopped);
    // shutdown stays idempotent after the refused submissions.
    pool.shutdown();
}

TEST(ThreadPool, SubmitFromTaskDuringShutdownFailsViaFuture)
{
    // A task that tries to spawn follow-up work while the pool is
    // draining must see the failure in its own future, not hang.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool]() {
        // Keeps spawning no-op work until shutdown() flips the pool
        // to stopping, at which point the next submit throws.
        for (;;) {
            pool.submit([]() {});
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });
    pool.shutdown();
    EXPECT_THROW(outer.get(), ThreadPoolStopped);
}

TEST(ThreadPool, TracksPerLevelDepths)
{
    ThreadPool pool(1);
    WorkerGate gate(pool);

    EXPECT_EQ(pool.queuedAtLevel(0), 0u);
    EXPECT_EQ(pool.peakQueuedAtLevel(3), 0u);

    pool.postTagged([]() {}, /*priority=*/0, /*level=*/3);
    pool.postTagged([]() {}, /*priority=*/0, /*level=*/3);
    pool.postTagged([]() {}, /*priority=*/0, /*level=*/1);
    EXPECT_EQ(pool.queuedAtLevel(3), 2u);
    EXPECT_EQ(pool.queuedAtLevel(1), 1u);
    EXPECT_EQ(pool.queuedAtLevel(0), 0u);
    EXPECT_EQ(pool.peakQueuedAtLevel(3), 2u);

    // The bulk query sees the same depths in one lock acquisition.
    u64 depths[4] = {};
    pool.queuedAtLevels(4, depths);
    EXPECT_EQ(depths[0], 0u);
    EXPECT_EQ(depths[1], 1u);
    EXPECT_EQ(depths[2], 0u);
    EXPECT_EQ(depths[3], 2u);

    gate.release();
    pool.shutdown();
    // Depths drain to zero; the high-water marks survive.
    EXPECT_EQ(pool.queuedAtLevel(3), 0u);
    EXPECT_EQ(pool.queuedAtLevel(1), 0u);
    EXPECT_EQ(pool.peakQueuedAtLevel(3), 2u);
    EXPECT_EQ(pool.peakQueuedAtLevel(1), 1u);
}

TEST(ThreadPool, PlainSubmitLandsOnLevelZero)
{
    ThreadPool pool(1);
    WorkerGate gate(pool);
    pool.submit([]() {});
    EXPECT_EQ(pool.queuedAtLevel(0), 1u);
    gate.release();
    pool.shutdown();
    EXPECT_EQ(pool.peakQueuedAtLevel(0), 1u);
}

TEST(ThreadPool, CancelRemovesQueuedTask)
{
    std::atomic<bool> ran{false};
    ThreadPool pool(1);
    {
        WorkerGate gate(pool);
        const u64 token = pool.postTagged([&ran]() { ran = true; },
                                          /*priority=*/0, /*level=*/2);
        EXPECT_EQ(pool.queuedAtLevel(2), 1u);
        EXPECT_TRUE(pool.cancel(token));
        EXPECT_EQ(pool.queuedAtLevel(2), 0u);
        // A second cancel of the same token reports failure.
        EXPECT_FALSE(pool.cancel(token));
        gate.release();
    }
    pool.shutdown();
    EXPECT_FALSE(ran.load()) << "cancelled task still ran";
}

TEST(ThreadPool, CancelStartedOrFinishedTaskFails)
{
    ThreadPool pool(1);
    std::promise<void> entered;
    std::promise<void> release;
    const u64 running = pool.postTagged([&]() {
        entered.set_value();
        release.get_future().wait();
    });
    entered.get_future().wait();
    // The worker holds the task: it is no longer cancellable.
    EXPECT_FALSE(pool.cancel(running));
    release.set_value();
    pool.shutdown();
    EXPECT_FALSE(pool.cancel(running));
    EXPECT_FALSE(pool.cancel(/*token=*/987654));
}

TEST(ThreadPool, CountsSubmissions)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.submittedCount(), 0u);
    pool.submit([]() {}).get();
    pool.submitSeeded([](Rng &) { return 0; }).get();
    EXPECT_EQ(pool.submittedCount(), 2u);
}

TEST(ThreadPool, QueuedCountDrainsToZero)
{
    ThreadPool pool(1);
    WorkerGate gate(pool);
    for (int i = 0; i < 4; ++i)
        pool.submit([]() {});
    EXPECT_EQ(pool.queuedCount(), 4u);
    gate.release();
    pool.shutdown();
    EXPECT_EQ(pool.queuedCount(), 0u);
}

} // namespace
} // namespace exion
