/**
 * @file
 * Unit tests for the ThreadPool: results, FIFO ordering, exception
 * propagation, deterministic seeded tasks and shutdown behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exion/common/threadpool.h"

namespace exion
{
namespace
{

TEST(ThreadPool, ReturnsResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, WorkerCountClamped)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3);
    ThreadPool defaulted(0);
    EXPECT_GE(defaulted.workerCount(), 1);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(
            pool.submit([i, &order]() { order.push_back(i); }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);

    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, SeededTasksAreDeterministicAcrossWorkerCounts)
{
    const auto draw_all = [](int workers) {
        ThreadPool pool(workers, /*seed=*/99);
        std::vector<std::future<u64>> futures;
        for (int i = 0; i < 16; ++i)
            futures.push_back(
                pool.submitSeeded([](Rng &rng) { return rng.next(); }));
        std::vector<u64> draws;
        for (auto &f : futures)
            draws.push_back(f.get());
        return draws;
    };
    EXPECT_EQ(draw_all(1), draw_all(4));
}

TEST(ThreadPool, SeededTasksDifferByIndex)
{
    ThreadPool pool(1, /*seed=*/5);
    const u64 a =
        pool.submitSeeded([](Rng &rng) { return rng.next(); }).get();
    const u64 b =
        pool.submitSeeded([](Rng &rng) { return rng.next(); }).get();
    EXPECT_NE(a, b);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&done]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++done;
            });
        pool.shutdown();
        EXPECT_EQ(done.load(), 100);
    }
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done]() { ++done; });
    }
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, CountsSubmissions)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.submittedCount(), 0u);
    pool.submit([]() {}).get();
    pool.submitSeeded([](Rng &) { return 0; }).get();
    EXPECT_EQ(pool.submittedCount(), 2u);
}

} // namespace
} // namespace exion
