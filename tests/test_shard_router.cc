/**
 * @file
 * Tests for the replica-sharded serving router.
 *
 * The core gate is the sharded-vs-solo differential: the same mixed
 * request set must produce bit-identical outputs through a 2-shard
 * router under *every* routing policy as through one engine's
 * sequential reference run. Around it sit the router edge cases —
 * merged typed refusal when all shards are full (minimum backoff
 * hint), a shard stopped mid-stream being excluded without losing
 * requests, cancel-by-ticket reaching the owning shard — plus the
 * per-shard Prometheus label scheme (aggregate sample + shard="i"
 * samples per family, one HELP/TYPE each, shard sum == aggregate),
 * policy-name round-trips and the sysfs cpulist parser behind
 * best-effort NUMA placement.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exion/common/numa.h"
#include "exion/serve/batch_engine.h"
#include "exion/serve/shard_router.h"

namespace exion
{
namespace
{

ModelConfig
tinyConfig()
{
    return makeTinyConfig(/*tokens=*/8, /*d_model=*/16, /*n_blocks=*/2,
                          /*iterations=*/6);
}

/**
 * A second model with identical cost but a distinct registry key, so
 * routing tests exercise multi-model placement without paying for a
 * second real architecture.
 */
ModelConfig
tinyConfigB()
{
    ModelConfig cfg = tinyConfig();
    cfg.benchmark = Benchmark::MDM;
    cfg.seed = 77;
    return cfg;
}

/** Mixed two-model batch: benchmarks, modes, seeds, quantisation. */
std::vector<ServeRequest>
mixedBatch(int n)
{
    std::vector<ServeRequest> batch;
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::FfnReuseOnly,
                              ExecMode::EpOnly, ExecMode::Exion};
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = i % 2 == 0 ? Benchmark::MLD : Benchmark::MDM;
        req.mode = modes[i % 4];
        req.quantize = i % 3 == 0;
        req.noiseSeed = 100 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

void
expectBitIdentical(const std::vector<RequestResult> &a,
                   const std::vector<RequestResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (Index i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        ASSERT_EQ(a[i].output.rows(), b[i].output.rows());
        ASSERT_EQ(a[i].output.cols(), b[i].output.cols());
        for (Index e = 0; e < a[i].output.size(); ++e)
            EXPECT_EQ(a[i].output.data()[e], b[i].output.data()[e])
                << "request " << i << " element " << e;
    }
}

/** Value of the sample whose line starts with `prefix`, or -1. */
double
sampleValue(const std::string &text, const std::string &prefix)
{
    size_t at = 0;
    while (at < text.size()) {
        const size_t end = text.find('\n', at);
        const std::string line = text.substr(at, end - at);
        if (line.compare(0, prefix.size(), prefix) == 0)
            return std::atof(line.c_str() + prefix.size());
        if (end == std::string::npos)
            break;
        at = end + 1;
    }
    return -1.0;
}

size_t
countOf(const std::string &text, const std::string &needle)
{
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++n;
    return n;
}

TEST(ShardRouter, ShardedMatchesSoloBitExactlyUnderEveryPolicy)
{
    const auto batch = mixedBatch(12);

    BatchEngine::Options soloOpts;
    soloOpts.workers = 2;
    BatchEngine solo(soloOpts);
    solo.addModel(tinyConfig());
    solo.addModel(tinyConfigB());
    const auto reference = solo.runSequential(batch);

    for (RoutePolicy policy :
         {RoutePolicy::LeastDepth, RoutePolicy::DeadlineAware,
          RoutePolicy::CohortAffinity}) {
        ShardRouter::Options opts;
        opts.shards = 2;
        opts.shardWorkers = 1;
        opts.policy = policy;
        opts.engine.queueResults = false;
        ShardRouter router(opts);
        router.addModel(tinyConfig());
        router.addModel(tinyConfigB());

        std::vector<Ticket> tickets;
        for (const auto &req : batch)
            tickets.push_back(router.submit(req));
        std::vector<RequestResult> routed;
        for (const auto &t : tickets)
            routed.push_back(t.get());

        expectBitIdentical(reference, routed);
        // Tickets settle just before the metrics increment; waitIdle
        // orders the snapshot after it.
        router.waitIdle();
        EXPECT_EQ(router.snapshot().completed(), batch.size())
            << routePolicyName(policy);
    }
}

TEST(ShardRouter, RefusesOnlyWhenAllShardsFullWithMinimumBackoff)
{
    ShardRouter::Options opts;
    opts.shards = 2;
    opts.shardWorkers = 1;
    opts.engine.queueResults = false;
    opts.engine.admission.maxQueuedPerClass = 1;
    ShardRouter router(opts);
    router.addModel(tinyConfig());
    router.pause();

    ServeRequest req;
    req.benchmark = Benchmark::MLD;
    req.noiseSeed = 5;

    // Each shard admits one ready request; the third probe finds
    // every shard at its class bound.
    EXPECT_TRUE(router.trySubmit(req).accepted());
    EXPECT_TRUE(router.trySubmit(req).accepted());

    const SubmitOutcome perShard0 = router.shard(0).trySubmit(req);
    const SubmitOutcome perShard1 = router.shard(1).trySubmit(req);
    ASSERT_FALSE(perShard0.accepted());
    ASSERT_FALSE(perShard1.accepted());

    const SubmitOutcome merged = router.trySubmit(req);
    ASSERT_FALSE(merged.accepted());
    EXPECT_EQ(*merged.reason, RejectReason::QueueFull);
    EXPECT_GT(merged.suggestedBackoffSeconds, 0.0);
    EXPECT_DOUBLE_EQ(merged.suggestedBackoffSeconds,
                     std::min(perShard0.suggestedBackoffSeconds,
                              perShard1.suggestedBackoffSeconds));

    router.resume();
    router.waitIdle();
    EXPECT_EQ(router.snapshot().completed(), 2u);
}

TEST(ShardRouter, StoppedShardIsExcludedWithoutLosingRequests)
{
    ShardRouter::Options opts;
    opts.shards = 2;
    opts.shardWorkers = 1;
    opts.engine.queueResults = false;
    ShardRouter router(opts);
    router.addModel(tinyConfig());

    ServeRequest req;
    req.benchmark = Benchmark::MLD;

    std::vector<Ticket> tickets;
    for (int i = 0; i < 4; ++i) {
        req.id = static_cast<u64>(i);
        req.noiseSeed = static_cast<u64>(i);
        tickets.push_back(router.submit(req));
    }
    router.waitIdle();

    // One shard dies mid-stream: the router keeps serving on the
    // survivor and every subsequent submission still lands.
    router.shard(0).shutdown();
    ASSERT_TRUE(router.shard(0).stoppedFlag());

    for (int i = 4; i < 10; ++i) {
        req.id = static_cast<u64>(i);
        req.noiseSeed = static_cast<u64>(i);
        SubmitOutcome out = router.trySubmit(req);
        ASSERT_TRUE(out.accepted()) << "request " << i;
        tickets.push_back(std::move(out.ticket));
    }
    for (const auto &t : tickets) {
        const RequestResult r = t.get();
        EXPECT_TRUE(r.ok()) << r.error;
    }
    router.waitIdle();
    EXPECT_EQ(router.snapshot().completed(), 10u);
    EXPECT_EQ(router.shardSnapshot(1).completed()
                  + router.shardSnapshot(0).completed(),
              10u);
}

TEST(ShardRouter, CancelByTicketReachesTheOwningShard)
{
    ShardRouter::Options opts;
    opts.shards = 2;
    opts.shardWorkers = 1;
    opts.engine.queueResults = false;
    ShardRouter router(opts);
    router.addModel(tinyConfig());
    router.pause();

    ServeRequest req;
    req.benchmark = Benchmark::MLD;
    req.noiseSeed = 9;
    Ticket ticket = router.submit(req);
    ASSERT_TRUE(ticket.valid());

    // The ticket carries its owning engine, so cancellation needs no
    // router-side routing at all.
    EXPECT_TRUE(ticket.cancel());
    const RequestResult r = ticket.get();
    EXPECT_TRUE(r.cancelled);

    router.resume();
    router.waitIdle();
    EXPECT_EQ(router.snapshot().cancelled(), 1u);
    EXPECT_EQ(router.snapshot().completed(), 0u);
}

TEST(ShardRouter, MetricsTextLabelsEveryShardAndSumsToAggregate)
{
    ShardRouter::Options opts;
    opts.shards = 2;
    opts.shardWorkers = 1;
    opts.engine.queueResults = false;
    // Pin placement so both shards demonstrably serve work: with the
    // router paused, least-depth alternates the queued requests.
    opts.policy = RoutePolicy::LeastDepth;
    ShardRouter router(opts);
    router.addModel(tinyConfig());

    router.pause();
    std::vector<Ticket> tickets;
    ServeRequest req;
    req.benchmark = Benchmark::MLD;
    for (int i = 0; i < 4; ++i) {
        req.id = static_cast<u64>(i);
        req.noiseSeed = static_cast<u64>(i);
        tickets.push_back(router.submit(req));
    }
    router.resume();
    for (const auto &t : tickets)
        t.wait();
    router.waitIdle();

    const std::string text = router.metricsText();

    // One HELP/TYPE per family even with three sample sets.
    EXPECT_EQ(countOf(text, "# HELP exion_serve_completed_total"), 1u);
    EXPECT_EQ(countOf(text, "# TYPE exion_serve_completed_total"), 1u);
    EXPECT_EQ(countOf(text, "# HELP exion_serve_queue_wait_seconds "),
              1u);

    // Aggregate sample plus one sample per shard, and the shard
    // samples sum to the aggregate.
    const double total = sampleValue(
        text, "exion_serve_completed_total{class=\"normal\"} ");
    const double s0 = sampleValue(
        text,
        "exion_serve_completed_total{class=\"normal\",shard=\"0\"} ");
    const double s1 = sampleValue(
        text,
        "exion_serve_completed_total{class=\"normal\",shard=\"1\"} ");
    EXPECT_EQ(total, 4.0);
    ASSERT_GE(s0, 0.0);
    ASSERT_GE(s1, 0.0);
    EXPECT_EQ(s0 + s1, total);
    EXPECT_GT(s0, 0.0);
    EXPECT_GT(s1, 0.0);

    // The summary family carries per-shard quantiles too.
    EXPECT_NE(text.find("exion_serve_queue_wait_seconds_count{shard"
                        "=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find("exion_serve_queue_wait_seconds_count{shard"
                        "=\"1\"}"),
              std::string::npos);
}

TEST(ShardRouter, PolicyNamesRoundTrip)
{
    for (RoutePolicy policy :
         {RoutePolicy::LeastDepth, RoutePolicy::DeadlineAware,
          RoutePolicy::CohortAffinity}) {
        RoutePolicy parsed = RoutePolicy::LeastDepth;
        EXPECT_TRUE(
            parseRoutePolicy(routePolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    RoutePolicy parsed;
    EXPECT_FALSE(parseRoutePolicy("round-robin", parsed));
    EXPECT_FALSE(parseRoutePolicy("", parsed));
}

TEST(NumaTopology, ParseCpuListHandlesRangesAndNoise)
{
    EXPECT_EQ(parseCpuList("0-3,8,10-11"),
              (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
    EXPECT_EQ(parseCpuList("2,1,1"), (std::vector<int>{1, 2}));
    EXPECT_EQ(parseCpuList("5"), (std::vector<int>{5}));
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("garbage").empty());
    // A malformed field is skipped, not fatal.
    EXPECT_EQ(parseCpuList("0,x,2"), (std::vector<int>{0, 2}));
}

TEST(NumaTopology, NodeDiscoveryIsWellFormedWhereItExists)
{
    const auto nodes = numaNodeCpus();
    for (const auto &cpus : nodes) {
        EXPECT_FALSE(cpus.empty());
        EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
        for (int cpu : cpus)
            EXPECT_GE(cpu, 0);
    }
}

} // namespace
} // namespace exion
