/**
 * @file
 * Unit tests for exion/common: RNG, bit ops, fixed point, stats, table.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "exion/common/bitops.h"
#include "exion/common/fixed_point.h"
#include "exion/common/rng.h"
#include "exion/common/stats.h"
#include "exion/common/table.h"

namespace exion
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(9);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i) {
        const u64 v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(BitOps, LeadingOneBasics)
{
    EXPECT_EQ(leadingOne(0), kNoLeadingOne);
    EXPECT_EQ(leadingOne(1), 0);
    EXPECT_EQ(leadingOne(2), 1);
    EXPECT_EQ(leadingOne(3), 1);
    EXPECT_EQ(leadingOne(5), 2);
    EXPECT_EQ(leadingOne(0x80000000u), 31);
}

TEST(BitOps, TwoStepLeadingOne)
{
    // Fig. 15: 3 = 0b0011 -> bits 1 and 0; 5 = 0b0101 -> bits 2 and 0.
    EXPECT_EQ(twoStepLeadingOne(3), (TsLod{1, 0}));
    EXPECT_EQ(twoStepLeadingOne(5), (TsLod{2, 0}));
    EXPECT_EQ(twoStepLeadingOne(4), (TsLod{2, kNoLeadingOne}));
    EXPECT_EQ(twoStepLeadingOne(0), (TsLod{kNoLeadingOne,
                                           kNoLeadingOne}));
    EXPECT_EQ(twoStepLeadingOne(0b1101u), (TsLod{3, 2}));
}

TEST(BitOps, LodValueNeverExceeds)
{
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const u32 v = static_cast<u32>(rng.uniformInt(1u << 20)) + 1;
        EXPECT_LE(lodValue(v), v);
        EXPECT_LE(tsLodValue(v), v);
        EXPECT_GE(tsLodValue(v), lodValue(v));
        // LOD captures at least half the magnitude; TS-LOD at least
        // three quarters of what remains representable.
        EXPECT_GT(2 * lodValue(v) + 1, v);
    }
}

TEST(BitOps, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 16), 0u);
    EXPECT_EQ(ceilDiv(1, 16), 1u);
    EXPECT_EQ(ceilDiv(16, 16), 1u);
    EXPECT_EQ(ceilDiv(17, 16), 2u);
}

TEST(BitOps, ZeroInputEdgeCases)
{
    // Zero is a valid input everywhere: the LOD helpers return the
    // sentinel / zero rather than shifting by a negative amount.
    EXPECT_EQ(leadingOne(0), kNoLeadingOne);
    EXPECT_EQ(twoStepLeadingOne(0),
              (TsLod{kNoLeadingOne, kNoLeadingOne}));
    EXPECT_EQ(lodValue(0), 0u);
    EXPECT_EQ(tsLodValue(0), 0u);
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(ceilDiv(0, 1), 0u);
}

TEST(BitOps, MaxValueEdgeCases)
{
    constexpr u32 kMax32 = 0xffffffffu;
    EXPECT_EQ(leadingOne(kMax32), 31);
    EXPECT_EQ(twoStepLeadingOne(kMax32), (TsLod{31, 30}));
    EXPECT_EQ(lodValue(kMax32), u32{1} << 31);
    EXPECT_EQ(tsLodValue(kMax32), (u32{1} << 31) | (u32{1} << 30));
    EXPECT_EQ(popcount64(~u64{0}), 64);
    // No overflow at the top of the range when den == 1.
    EXPECT_EQ(ceilDiv(~u64{0}, 1), ~u64{0});
}

TEST(BitOps, CeilDivZeroDenominatorPanics)
{
#if !EXION_ASSERTS_ENABLED
    GTEST_SKIP() << "EXION_ASSERT compiled out (EXION_ASSERTIONS=OFF)";
#endif
    EXPECT_DEATH(ceilDiv(5, 0), "ceilDiv by zero");
}

TEST(FixedPoint, WidthProperties)
{
    EXPECT_EQ(intWidthBits(IntWidth::Int12), 12);
    EXPECT_EQ(intWidthMax(IntWidth::Int12), 2047);
    EXPECT_EQ(intWidthMax(IntWidth::Int16), 32767);
}

TEST(FixedPoint, RoundTripWithinHalfStep)
{
    Rng rng(19);
    std::vector<float> data(512);
    for (auto &v : data)
        v = static_cast<float>(rng.normal(0.0, 2.0));
    const QuantParams params = chooseQuantParams(data, IntWidth::Int12);
    for (float v : data) {
        const float rt = quantizeDequantize(v, params);
        EXPECT_NEAR(rt, v, params.scale * 0.5 + 1e-7);
    }
}

TEST(FixedPoint, SaturatesAtRange)
{
    std::vector<float> data = {1.0f};
    const QuantParams params = chooseQuantParams(data, IntWidth::Int12);
    EXPECT_EQ(quantize(100.0f, params), 2047);
    EXPECT_EQ(quantize(-100.0f, params), -2048);
}

TEST(FixedPoint, ZeroDataGetsUnitScale)
{
    const QuantParams params = chooseQuantParams({}, IntWidth::Int12);
    EXPECT_DOUBLE_EQ(params.scale, 1.0);
}

TEST(FixedPoint, SaturatingAdd)
{
    EXPECT_EQ(saturatingAdd(2000, 100, 12), 2047);
    EXPECT_EQ(saturatingAdd(-2000, -100, 12), -2048);
    EXPECT_EQ(saturatingAdd(5, 7, 12), 12);
}

TEST(Stats, RunningStatsBasics)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"model", "value"});
    table.setTitle("demo");
    table.addRow({"MLD", "1.0"});
    table.addRow({"StableDiffusion", "2.5"});
    table.addNote("a note");
    const std::string out = table.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("StableDiffusion"), std::string::npos);
    EXPECT_NE(out.find("a note"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
    EXPECT_EQ(formatRatio(379.34, 1), "379.3x");
    EXPECT_EQ(formatPercent(0.138, 1), "13.8%");
}

} // namespace
} // namespace exion
