/**
 * @file
 * The immutable weight store: EXWS format round-trips, corruption
 * detection, quantized-at-rest exactness, and the differential gate —
 * a pipeline served from a saved, mmap'd store must be bit-identical
 * to the seeded in-memory build across every benchmark, execution
 * mode and quantisation level, solo and cohort, and two engines
 * registering one store must share its weight image.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exion/common/mmap_file.h"
#include "exion/common/rng.h"
#include "exion/common/threadpool.h"
#include "exion/model/pipeline.h"
#include "exion/model/weight_store.h"
#include "exion/serve/batch_engine.h"
#include "exion/sparsity/cohort_executor.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

/** Bitwise equality: operator== would let -0.0 pass as +0.0. */
bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols()
        && (a.size() == 0
            || std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)) == 0);
}

/** Bitwise equality of quantized images, scale bits included. */
bool
bitIdenticalQuant(const QuantMatrix &a, const QuantMatrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols()
        && std::memcmp(&a.params().scale, &b.params().scale,
                       sizeof(double)) == 0
        && a.params().width == b.params().width
        && (a.size() == 0
            || std::memcmp(a.rowPtr(0), b.rowPtr(0),
                           a.size() * sizeof(i32)) == 0);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/** Short runs that still cross a dense/sparse FFN-Reuse boundary. */
ModelConfig
shortConfig(Benchmark b)
{
    ModelConfig cfg = makeConfig(b, Scale::Reduced);
    cfg.iterations = 3;
    cfg.ffnReuse.denseInterval = 1;
    return cfg;
}

Matrix
runPipeline(const DiffusionPipeline &pipe, ExecMode mode, bool quantize,
            u64 seed)
{
    if (mode == ExecMode::Dense) {
        DenseExecutor exec(quantize);
        return pipe.run(exec, seed);
    }
    const bool ffnr =
        mode == ExecMode::FfnReuseOnly || mode == ExecMode::Exion;
    const bool ep = mode == ExecMode::EpOnly || mode == ExecMode::Exion;
    SparseExecutor exec(
        SparseExecutor::fromConfig(pipe.config(), ffnr, ep, quantize));
    return pipe.run(exec, seed);
}

Matrix
randomMatrix(Index rows, Index cols, u64 seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    m.fillNormal(rng, 0.0f, 1.0f);
    return m;
}

// ------------------------------------------------------------ mmap

TEST(MmapFileTest, MapsExistingFileReadOnly)
{
    const std::string path = tempPath("mmap_basic.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "exion mmap payload";
    }
    const MmapFile f = MmapFile::open(path);
    ASSERT_EQ(f.size(), 18u);
    EXPECT_EQ(std::memcmp(f.data(), "exion mmap payload", 18), 0);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(f.mapped());
#endif
    std::remove(path.c_str());
}

TEST(MmapFileTest, MissingFileThrows)
{
    EXPECT_THROW(MmapFile::open(tempPath("no_such_file.bin")),
                 std::runtime_error);
}

// ---------------------------------------------------------- format

TEST(WeightStoreTest, SaveLoadRoundTripPreservesEverything)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const auto built = WeightStore::build(cfg);
    const std::string path = tempPath("roundtrip.exws");
    built->save(path);
    const auto loaded = WeightStore::load(path);

#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(loaded->mapped());
#endif
    EXPECT_EQ(built->checksum(), loaded->checksum());
    EXPECT_EQ(built->sizeBytes(), loaded->sizeBytes());

    const ModelConfig &lc = loaded->config();
    EXPECT_EQ(lc.name, cfg.name);
    EXPECT_EQ(lc.benchmark, cfg.benchmark);
    EXPECT_EQ(lc.scale, cfg.scale);
    EXPECT_EQ(lc.iterations, cfg.iterations);
    EXPECT_EQ(lc.seed, cfg.seed);
    EXPECT_EQ(lc.stages.size(), cfg.stages.size());
    EXPECT_EQ(lc.latentTokens, cfg.latentTokens);
    EXPECT_EQ(lc.latentDim, cfg.latentDim);
    EXPECT_EQ(lc.geglu, cfg.geglu);
    EXPECT_EQ(lc.ffnReuse.denseInterval, cfg.ffnReuse.denseInterval);

    ASSERT_EQ(built->entries().size(), loaded->entries().size());
    for (const auto &[name, e] : built->entries()) {
        SCOPED_TRACE(name);
        ASSERT_TRUE(loaded->has(name));
        const auto &le = loaded->entries().at(name);
        EXPECT_EQ(le.kind, e.kind);
        EXPECT_EQ(le.rows, e.rows);
        EXPECT_EQ(le.cols, e.cols);
        EXPECT_EQ(le.byteLen, e.byteLen);
        EXPECT_EQ(le.offset % 64, 0u);
        if (e.kind == WeightStore::TensorKind::Float32)
            EXPECT_TRUE(bitIdentical(built->matrix(name),
                                     loaded->matrix(name)));
        else
            EXPECT_TRUE(bitIdenticalQuant(built->quant(name),
                                          loaded->quant(name)));
    }
    EXPECT_TRUE(built->matrix("inProj.w").borrowed());
    EXPECT_TRUE(loaded->matrix("inProj.w").borrowed());
    std::remove(path.c_str());
}

TEST(WeightStoreTest, CorruptionAndForeignImagesAreRejected)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const auto built = WeightStore::build(cfg);
    const std::string path = tempPath("corrupt.exws");
    built->save(path);

    std::vector<char> image;
    {
        std::ifstream in(path, std::ios::binary);
        image.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    const auto write_variant = [&](auto mutate) {
        std::vector<char> bytes = image;
        mutate(bytes);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // A flipped payload byte fails the checksum.
    write_variant([](std::vector<char> &b) { b[b.size() / 2] ^= 0x01; });
    EXPECT_THROW(WeightStore::load(path), WeightStoreError);

    // Truncation fails the size check.
    write_variant([](std::vector<char> &b) { b.resize(b.size() / 2); });
    EXPECT_THROW(WeightStore::load(path), WeightStoreError);

    // Foreign magic is refused before any parsing.
    write_variant([](std::vector<char> &b) { b[0] = 'X'; });
    EXPECT_THROW(WeightStore::load(path), WeightStoreError);

    // An unknown version is refused.
    write_variant([](std::vector<char> &b) { b[12] = 99; });
    EXPECT_THROW(WeightStore::load(path), WeightStoreError);

    // The pristine image still loads after all that.
    write_variant([](std::vector<char> &) {});
    EXPECT_NO_THROW(WeightStore::load(path));
    std::remove(path.c_str());
}

// ------------------------------------------------- quantized at rest

TEST(WeightStoreTest, QuantAtRestRoundTripMatchesLiveQuantization)
{
    // 63/64/65 columns straddle the store's 64-byte section alignment
    // and the kernels' 64-lane mask granularity.
    ModelConfig cfg = shortConfig(Benchmark::MLD);
    u64 seed = 31337;
    for (Index cols : {Index{63}, Index{64}, Index{65}}) {
        SCOPED_TRACE(::testing::Message() << cols << " cols");
        const Matrix w = randomMatrix(17, cols, ++seed);
        const QuantMatrix live = QuantMatrix::fromFloat(w, IntWidth::Int12);

        WeightStoreBuilder builder(cfg);
        builder.add("w", w);
        builder.add("w.q", live);
        const auto store = builder.finish();
        const std::string path =
            tempPath("qrt" + std::to_string(cols) + ".exws");
        store->save(path);
        const auto loaded = WeightStore::load(path);

        const QuantMatrix at_rest = loaded->quant("w.q");
        EXPECT_TRUE(at_rest.borrowed());
        EXPECT_TRUE(bitIdenticalQuant(live, at_rest));
        // Re-quantizing the stored float image reproduces the at-rest
        // image: quantisation is deterministic, so quantized-at-rest
        // and quantized-per-request are the same bits.
        EXPECT_TRUE(bitIdenticalQuant(
            QuantMatrix::fromFloat(loaded->matrix("w"), IntWidth::Int12),
            at_rest));
        // Dequantize and integer matmul agree to the bit.
        EXPECT_TRUE(bitIdentical(live.toFloat(), at_rest.toFloat()));
        const QuantMatrix qx = QuantMatrix::fromFloat(
            randomMatrix(5, 17, 999), IntWidth::Int12);
        // x (5x17) * w (17xcols) in the quant domain.
        EXPECT_TRUE(bitIdentical(matmulQuant(qx, live),
                                 matmulQuant(qx, at_rest)));
        std::remove(path.c_str());
    }
}

TEST(WeightStoreTest, QuantAtRestAdversarialScalesAndShapes)
{
    ModelConfig cfg = shortConfig(Benchmark::MLD);
    WeightStoreBuilder builder(cfg);

    // Extreme dynamic range: quantize() clamps per contract, and the
    // clamped image must round-trip exactly.
    Matrix extreme(2, 3);
    extreme(0, 0) = std::numeric_limits<float>::max();
    extreme(0, 1) = std::numeric_limits<float>::denorm_min();
    extreme(0, 2) = -std::numeric_limits<float>::max();
    extreme(1, 0) = 0.0f;
    extreme(1, 1) = -0.0f;
    extreme(1, 2) = 1.0f;
    const QuantMatrix extreme_q =
        QuantMatrix::fromFloat(extreme, IntWidth::Int12);
    builder.add("extreme.q", extreme_q);

    // Adversarial stored scales (Inf / NaN doubles) must survive the
    // index round-trip bit-for-bit — the loader validates structure,
    // not numerology.
    QuantParams inf_params;
    inf_params.scale = std::numeric_limits<double>::infinity();
    inf_params.width = IntWidth::Int12;
    const i32 inf_ints[4] = {1, -2, 3, -4};
    builder.add("inf.q", QuantMatrix::borrow(inf_ints, 2, 2, inf_params));

    QuantParams nan_params;
    nan_params.scale = std::numeric_limits<double>::quiet_NaN();
    nan_params.width = IntWidth::Int16;
    const i32 nan_ints[2] = {7, -7};
    builder.add("nan.q", QuantMatrix::borrow(nan_ints, 1, 2, nan_params));

    // Degenerate shapes: zero rows and zero cols, float and quant.
    builder.add("zr", Matrix(0, 5));
    builder.add("zc", Matrix(5, 0));
    builder.add("zr.q", QuantMatrix::fromFloat(Matrix(0, 5),
                                               IntWidth::Int12));
    builder.add("zc.q", QuantMatrix::fromFloat(Matrix(5, 0),
                                               IntWidth::Int12));

    const auto store = builder.finish();
    const std::string path = tempPath("adversarial.exws");
    store->save(path);
    const auto loaded = WeightStore::load(path);

    EXPECT_TRUE(bitIdenticalQuant(extreme_q, loaded->quant("extreme.q")));
    // The FLT_MAX magnitude maps to the INT12 extreme, the rest of
    // the range collapses to 0/±1-ish small codes — clamp engaged.
    EXPECT_EQ(loaded->quant("extreme.q").rowPtr(0)[0], 2047);
    EXPECT_EQ(loaded->quant("extreme.q").rowPtr(0)[2], -2047);

    const QuantMatrix inf_loaded = loaded->quant("inf.q");
    EXPECT_TRUE(std::isinf(inf_loaded.params().scale));
    EXPECT_EQ(std::memcmp(inf_loaded.rowPtr(0), inf_ints,
                          sizeof(inf_ints)),
              0);
    const QuantMatrix nan_loaded = loaded->quant("nan.q");
    EXPECT_TRUE(std::isnan(nan_loaded.params().scale));
    EXPECT_EQ(nan_loaded.params().width, IntWidth::Int16);
    EXPECT_EQ(std::memcmp(nan_loaded.rowPtr(0), nan_ints,
                          sizeof(nan_ints)),
              0);

    EXPECT_EQ(loaded->matrix("zr").rows(), 0);
    EXPECT_EQ(loaded->matrix("zr").cols(), 5);
    EXPECT_EQ(loaded->matrix("zc").rows(), 5);
    EXPECT_EQ(loaded->matrix("zc").cols(), 0);
    EXPECT_EQ(loaded->quant("zr.q").size(), 0);
    EXPECT_EQ(loaded->quant("zc.q").size(), 0);
    EXPECT_EQ(loaded->quant("zr.q").params().scale, 1.0);
    std::remove(path.c_str());
}

// ----------------------------------------------------- differential

/**
 * The tentpole gate: every benchmark, every ablation mode, float and
 * INT12 — a pipeline over the saved-then-mmap'd store must reproduce
 * the seeded in-memory build to the last bit.
 */
TEST(WeightStoreDifferentialTest, MmapStoreMatchesSeededBuildEverywhere)
{
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::EpOnly,
                              ExecMode::FfnReuseOnly, ExecMode::Exion};
    u64 seed = 77000;
    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = shortConfig(b);
        const DiffusionPipeline seeded(cfg);

        const std::string path = tempPath(cfg.name + ".exws");
        seeded.store()->save(path);
        const auto loaded = WeightStore::load(path);
        const DiffusionPipeline mapped(loaded);

        for (ExecMode mode : modes) {
            for (bool quantize : {false, true}) {
                SCOPED_TRACE(cfg.name + " mode " + execModeName(mode)
                             + (quantize ? " int12" : " float"));
                ++seed;
                const Matrix ref =
                    runPipeline(seeded, mode, quantize, seed);
                const Matrix got =
                    runPipeline(mapped, mode, quantize, seed);
                ASSERT_EQ(maxAbsDiff(ref, got), 0.0);
                ASSERT_TRUE(bitIdentical(ref, got));
            }
        }
        std::remove(path.c_str());
    }
}

/** Cohort stepping over the mmap'd store vs solo seeded-build runs. */
TEST(WeightStoreDifferentialTest, CohortOverMmapStoreMatchesSoloSeeded)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const DiffusionPipeline seeded(cfg);
    const std::string path = tempPath("cohort.exws");
    seeded.store()->save(path);
    const DiffusionPipeline mapped(WeightStore::load(path));

    const Index n = 5;
    for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
        SCOPED_TRACE(execModeName(mode));
        const bool sparse = mode == ExecMode::Exion;
        CohortExecutor exec(SparseExecutor::fromConfig(
            cfg, /*use_ffn_reuse=*/sparse, /*use_ep=*/sparse,
            /*quantize=*/false));
        CohortRun run(mapped, exec);
        std::vector<Index> slots;
        for (Index i = 0; i < n; ++i)
            slots.push_back(run.join(6100 + 17 * i));
        while (!run.done())
            run.step();
        for (Index i = 0; i < n; ++i) {
            SCOPED_TRACE(::testing::Message() << "member " << i);
            const Matrix solo = runPipeline(seeded, mode, false,
                                            6100 + 17 * i);
            const Matrix stacked = run.takeResult(slots[i]);
            ASSERT_EQ(maxAbsDiff(solo, stacked), 0.0);
            ASSERT_TRUE(bitIdentical(solo, stacked));
        }
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------- serving

TEST(WeightStoreEngineTest, TwoEnginesShareOneStoreBitIdentically)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const std::string path = tempPath("engines.exws");
    WeightStore::build(cfg)->save(path);
    const auto store = WeightStore::load(path);
    const long base_use = store.use_count();

    std::vector<ServeRequest> requests;
    for (u64 i = 0; i < 4; ++i) {
        ServeRequest req;
        req.id = i;
        req.benchmark = cfg.benchmark;
        req.mode = i % 2 == 0 ? ExecMode::Dense : ExecMode::Exion;
        req.quantize = i == 3;
        req.noiseSeed = 8800 + i;
        requests.push_back(req);
    }

    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine first(opts);
    first.registerModel(cfg.benchmark, store);
    BatchEngine second(opts);
    second.registerModel(cfg.benchmark, store);
    // Both engines hold views into the one store — no copy happened.
    EXPECT_EQ(store.use_count(), base_use + 2);
    EXPECT_EQ(first.pipeline(cfg.benchmark).store().get(), store.get());
    EXPECT_EQ(second.pipeline(cfg.benchmark).store().get(), store.get());

    // A third engine on the legacy build path is the reference.
    BatchEngine legacy(opts);
    legacy.addModel(cfg);

    const auto a = first.runBatch(requests);
    const auto b = second.runBatch(requests);
    const auto c = legacy.runBatch(requests);
    ASSERT_EQ(a.size(), requests.size());
    for (Index i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "request " << i);
        ASSERT_TRUE(a[i].ok() && b[i].ok() && c[i].ok());
        ASSERT_TRUE(bitIdentical(a[i].output, b[i].output));
        ASSERT_TRUE(bitIdentical(a[i].output, c[i].output));
    }
    std::remove(path.c_str());
}

TEST(WeightStoreEngineTest, RegisterFromFileServesTheBenchmark)
{
    const ModelConfig cfg = shortConfig(Benchmark::EDGE);
    const std::string path = tempPath("fromfile.exws");
    WeightStore::build(cfg)->save(path);

    BatchEngine engine;
    engine.registerModelFromFile(path);
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Dense;
    req.noiseSeed = 321;
    Ticket t = engine.submit(req);
    ASSERT_TRUE(t.get().ok());

    const DiffusionPipeline seeded(cfg);
    DenseExecutor exec;
    EXPECT_TRUE(bitIdentical(seeded.run(exec, 321), t.get().output));
    std::remove(path.c_str());
}

TEST(WeightStoreEngineTest, RegisterWrongBenchmarkOrNullStoreThrows)
{
    BatchEngine engine;
    EXPECT_THROW(engine.registerModel(Benchmark::MLD, nullptr),
                 std::invalid_argument);
    const auto store = WeightStore::build(shortConfig(Benchmark::MLD));
    EXPECT_THROW(engine.registerModel(Benchmark::DiT, store),
                 std::invalid_argument);
    // The matching benchmark registers fine.
    EXPECT_NO_THROW(engine.registerModel(Benchmark::MLD, store));
}

TEST(WeightStoreEngineTest, RegistrationOnStoppedEngineThrowsTyped)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const auto store = WeightStore::build(cfg);
    BatchEngine engine;
    engine.shutdown();
    EXPECT_THROW(engine.registerModel(cfg.benchmark, store),
                 ThreadPoolStopped);
    EXPECT_THROW(engine.addModel(cfg), ThreadPoolStopped);
    const std::string path = tempPath("stopped.exws");
    store->save(path);
    EXPECT_THROW(engine.registerModelFromFile(path), ThreadPoolStopped);
    std::remove(path.c_str());
}

TEST(WeightStoreTest, PinPlumbingAndBestEffortDegradation)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const auto built = WeightStore::build(cfg);
    const std::string path = tempPath("pinned.exws");
    built->save(path);

    // Without a pin request the mapping is never locked.
    const auto unpinned = WeightStore::load(path);
    EXPECT_FALSE(unpinned->pinned());

    // With one, pinning is best-effort: mlock may be refused by
    // RLIMIT_MEMLOCK in constrained environments, and that must
    // degrade to a served-but-unpinned store, never an error. Either
    // outcome loads the identical image.
    const auto pinned = WeightStore::load(path, /*pin=*/true);
    if (pinned->pinned()) {
        EXPECT_TRUE(pinned->mapped());
    }
    EXPECT_EQ(pinned->checksum(), unpinned->checksum());
    EXPECT_EQ(pinned->sizeBytes(), unpinned->sizeBytes());

    // build()-mode stores have no mapping to pin.
    EXPECT_FALSE(built->pinned());
    std::remove(path.c_str());
}

TEST(WeightStoreEngineTest, PinnedRegistrationServesIdentically)
{
    const ModelConfig cfg = shortConfig(Benchmark::MLD);
    const auto store = WeightStore::build(cfg);
    const std::string path = tempPath("pinned_engine.exws");
    store->save(path);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Exion;
    req.noiseSeed = 11;

    BatchEngine::Options opts;
    opts.workers = 1;
    opts.queueResults = false;
    BatchEngine plain(opts);
    plain.registerModel(cfg.benchmark, store);
    const RequestResult reference = plain.submit(req).get();

    BatchEngine viaPin(opts);
    viaPin.registerModelFromFile(path, /*pin=*/true);
    const RequestResult result = viaPin.submit(req).get();

    ASSERT_EQ(result.output.rows(), reference.output.rows());
    ASSERT_EQ(result.output.cols(), reference.output.cols());
    const auto got = result.output.data();
    const auto want = reference.output.data();
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
    std::remove(path.c_str());
}

} // namespace
} // namespace exion
