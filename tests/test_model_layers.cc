/**
 * @file
 * Unit tests for exion/model layers: Linear, GELU, LayerNorm, Softmax,
 * timestep embedding, ResBlock.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exion/common/rng.h"
#include "exion/model/layers.h"
#include "exion/model/resblock.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(Linear, ForwardMatchesManual)
{
    Rng rng(1);
    Linear lin(3, 2, rng);
    Matrix x(1, 3);
    x(0, 0) = 1.0f;
    x(0, 1) = -2.0f;
    x(0, 2) = 0.5f;
    const Matrix y = lin.forward(x);
    for (Index j = 0; j < 2; ++j) {
        float expect = lin.bias()(0, j);
        for (Index k = 0; k < 3; ++k)
            expect += x(0, k) * lin.weight()(k, j);
        EXPECT_NEAR(y(0, j), expect, 1e-5);
    }
}

TEST(Gelu, KnownValues)
{
    EXPECT_NEAR(geluScalar(0.0f), 0.0f, 1e-7);
    // gelu(x) -> x for large positive, -> 0 for large negative.
    EXPECT_NEAR(geluScalar(10.0f), 10.0f, 1e-3);
    EXPECT_NEAR(geluScalar(-10.0f), 0.0f, 1e-3);
    // Reference value of tanh-GELU at 1.0.
    EXPECT_NEAR(geluScalar(1.0f), 0.8412f, 1e-3);
}

TEST(Gelu, ShapeProperties)
{
    // GELU is not monotone: it dips to a single minimum near -0.75
    // and is increasing for x >= 0; it is bounded below by ~-0.17.
    float prev = geluScalar(0.0f);
    for (float x = 0.1f; x < 6.0f; x += 0.1f) {
        const float cur = geluScalar(x);
        EXPECT_GE(cur, prev - 1e-6f);
        prev = cur;
    }
    for (float x = -6.0f; x < 6.0f; x += 0.05f)
        EXPECT_GE(geluScalar(x), -0.2f);
    // Minimum sits left of zero.
    EXPECT_LT(geluScalar(-0.75f), geluScalar(0.0f));
    EXPECT_LT(geluScalar(-0.75f), geluScalar(-3.0f));
}

TEST(LayerNorm, NormalisesRows)
{
    Rng rng(3);
    Matrix x(4, 32);
    x.fillNormal(rng, 3.0f, 2.0f);
    Matrix gamma(1, 32, 1.0f), beta(1, 32, 0.0f);
    const Matrix y = layerNorm(x, gamma, beta);
    for (Index r = 0; r < 4; ++r) {
        double sum = 0.0, sq = 0.0;
        for (Index c = 0; c < 32; ++c) {
            sum += y(r, c);
            sq += static_cast<double>(y(r, c)) * y(r, c);
        }
        EXPECT_NEAR(sum / 32.0, 0.0, 1e-4);
        EXPECT_NEAR(sq / 32.0, 1.0, 1e-2);
    }
}

TEST(LayerNorm, GammaBetaApplied)
{
    Matrix x(1, 4);
    x(0, 0) = 1;
    x(0, 1) = 2;
    x(0, 2) = 3;
    x(0, 3) = 4;
    Matrix gamma(1, 4, 2.0f), beta(1, 4, 1.0f);
    const Matrix y = layerNorm(x, gamma, beta);
    Matrix unit_gamma(1, 4, 1.0f), zero_beta(1, 4, 0.0f);
    const Matrix base = layerNorm(x, unit_gamma, zero_beta);
    for (Index c = 0; c < 4; ++c)
        EXPECT_NEAR(y(0, c), 2.0f * base(0, c) + 1.0f, 1e-5);
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(5);
    Matrix x(6, 10);
    x.fillNormal(rng, 0.0f, 3.0f);
    const Matrix p = softmax(x);
    for (Index r = 0; r < 6; ++r) {
        double sum = 0.0;
        for (Index c = 0; c < 10; ++c) {
            EXPECT_GE(p(r, c), 0.0f);
            sum += p(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Softmax, DominantValueWins)
{
    Matrix x(1, 4, 0.0f);
    x(0, 2) = 20.0f;
    const Matrix p = softmax(x);
    EXPECT_GT(p(0, 2), 0.999f);
}

TEST(Softmax, MaskedRowIsZero)
{
    Matrix x(1, 3, -std::numeric_limits<float>::infinity());
    const Matrix p = softmax(x);
    for (Index c = 0; c < 3; ++c)
        EXPECT_FLOAT_EQ(p(0, c), 0.0f);
}

TEST(TimestepEmbedding, DistinctAndBounded)
{
    const Matrix e1 = timestepEmbedding(10, 64);
    const Matrix e2 = timestepEmbedding(500, 64);
    EXPECT_EQ(e1.cols(), 64u);
    EXPECT_GT(maxAbsDiff(e1, e2), 0.1);
    for (float v : e1.data())
        EXPECT_LE(std::abs(v), 1.0f + 1e-6f);
}

TEST(ResBlock, PreservesShapeAndAddsResidual)
{
    Rng rng(7);
    ResBlock res(16, rng);
    Matrix x(4, 16);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix y = res.forward(x);
    EXPECT_EQ(y.rows(), 4u);
    EXPECT_EQ(y.cols(), 16u);
    // Residual path keeps output correlated with input.
    double dot = 0.0, nx = 0.0;
    for (Index i = 0; i < x.size(); ++i) {
        dot += static_cast<double>(x.data()[i]) * y.data()[i];
        nx += static_cast<double>(x.data()[i]) * x.data()[i];
    }
    EXPECT_GT(dot / nx, 0.5);
}

} // namespace
} // namespace exion
