/**
 * @file
 * Tests for the FFN-Reuse algorithm (Section III-A).
 */

#include <gtest/gtest.h>

#include "exion/common/rng.h"
#include "exion/metrics/metrics.h"
#include "exion/sparsity/ffn_reuse.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

struct Fixture
{
    Rng rng{101};
    TransformerBlock blk{0, 32, 4, 4, false, rng};
    ExecStats stats;
    ExecObservers observers;

    Matrix
    input(u64 seed)
    {
        Rng r(seed);
        Matrix x(8, 32);
        x.fillNormal(r, 0.0f, 1.0f);
        return x;
    }

    Matrix
    denseReference(const Matrix &x)
    {
        ExecStats s;
        ExecObservers o;
        return denseFfnImpl(blk, x, false, s, o);
    }
};

TEST(SparsityQuantile, PicksTargetFraction)
{
    std::vector<float> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(static_cast<float>(i));
    const double theta = sparsityQuantile(values, 0.9);
    int below = 0;
    for (float v : values)
        below += std::abs(v) <= theta ? 1 : 0;
    EXPECT_NEAR(below / 100.0, 0.9, 0.02);
}

TEST(FfnReuse, DenseIterationSchedule)
{
    FfnReuse reuse({3, 0.9}, false);
    EXPECT_TRUE(reuse.isDenseIteration(0));
    EXPECT_FALSE(reuse.isDenseIteration(1));
    EXPECT_FALSE(reuse.isDenseIteration(3));
    EXPECT_TRUE(reuse.isDenseIteration(4));
    EXPECT_TRUE(reuse.isDenseIteration(8));
}

TEST(FfnReuse, DenseIterationMatchesReference)
{
    Fixture f;
    FfnReuse reuse({3, 0.9}, false);
    const Matrix x = f.input(1);
    const Matrix out = reuse.run(f.blk, x, 0, f.stats, f.observers);
    EXPECT_LT(maxAbsDiff(out, f.denseReference(x)), 1e-4);
}

TEST(FfnReuse, MaskHitsTargetSparsity)
{
    Fixture f;
    FfnReuse reuse({3, 0.9}, false);
    reuse.run(f.blk, f.input(1), 0, f.stats, f.observers);
    const FfnReuseBlockState *st = reuse.state(0);
    ASSERT_NE(st, nullptr);
    EXPECT_NEAR(st->mask.sparsity(), 0.9, 0.02);
}

TEST(FfnReuse, ZeroSparsityReproducesDenseExactly)
{
    // targetSparsity 0 -> every element recomputed -> sparse
    // iterations must equal the dense reference on fresh inputs.
    Fixture f;
    FfnReuse reuse({3, 0.0}, false);
    reuse.run(f.blk, f.input(1), 0, f.stats, f.observers);
    const Matrix x2 = f.input(2);
    const Matrix out = reuse.run(f.blk, x2, 1, f.stats, f.observers);
    // The quantile threshold always leaves the minimum-|H| element
    // (plus ties) reused, so allow that single stale contribution.
    EXPECT_LT(relativeError(f.denseReference(x2), out), 0.02);
}

TEST(FfnReuse, FullSparsityReusesEverything)
{
    // targetSparsity ~1 -> nothing recomputed -> sparse iterations
    // return the dense iteration's output regardless of input.
    Fixture f;
    FfnReuse reuse({3, 1.0}, false);
    const Matrix x1 = f.input(1);
    const Matrix out1 = reuse.run(f.blk, x1, 0, f.stats, f.observers);
    const Matrix out2 = reuse.run(f.blk, f.input(2), 1, f.stats,
                                  f.observers);
    // One element (the max) stays above any quantile threshold; allow
    // its recomputation, the rest must be byte-identical reuse.
    Index diff = 0;
    for (Index i = 0; i < out1.size(); ++i)
        diff += out1.data()[i] != out2.data()[i] ? 1 : 0;
    EXPECT_LE(diff, out1.cols());
}

TEST(FfnReuse, SparseIterationApproximatesDense)
{
    Fixture f;
    FfnReuse reuse({4, 0.8}, false);
    const Matrix x1 = f.input(1);
    reuse.run(f.blk, x1, 0, f.stats, f.observers);
    // Nearby input: high reuse validity.
    Matrix x2 = x1;
    Rng noise(3);
    for (auto &v : x2.data())
        v += 0.02f * static_cast<float>(noise.normal());
    const Matrix approx = reuse.run(f.blk, x2, 1, f.stats, f.observers);
    const Matrix exact = f.denseReference(x2);
    EXPECT_GT(psnr(exact, approx), 25.0);
    EXPECT_LT(relativeError(exact, approx), 0.1);
}

TEST(FfnReuse, RecomputedElementsAreFresh)
{
    // Elements with mask bit 1 must use the *current* input.
    Fixture f;
    FfnReuse reuse({4, 0.5}, false);
    const Matrix x1 = f.input(1);
    reuse.run(f.blk, x1, 0, f.stats, f.observers);
    const FfnReuseBlockState st = *reuse.state(0);

    const Matrix x2 = f.input(9); // completely different input
    const Matrix out = reuse.run(f.blk, x2, 1, f.stats, f.observers);

    // Reconstruct the expected hybrid: cached hidden for mask=0,
    // fresh hidden for mask=1, through the second layer.
    Matrix gate = matmul(x2, f.blk.ffn1().weight());
    addRowVector(gate, f.blk.ffn1().bias());
    Matrix hybrid = st.hiddenCache;
    for (Index r = 0; r < hybrid.rows(); ++r)
        for (Index c = 0; c < hybrid.cols(); ++c)
            if (st.mask.get(r, c))
                hybrid(r, c) = geluScalar(gate(r, c));
    Matrix expect = matmul(hybrid, f.blk.ffn2().weight());
    addRowVector(expect, f.blk.ffn2().bias());
    EXPECT_LT(maxAbsDiff(out, expect), 1e-3);
}

TEST(FfnReuse, StatsAccounting)
{
    Fixture f;
    FfnReuse reuse({4, 0.9}, false);
    reuse.run(f.blk, f.input(1), 0, f.stats, f.observers);
    const OpCount dense_after_one = f.stats.ffnOpsDense;
    EXPECT_EQ(f.stats.ffnOpsExecuted, dense_after_one);
    EXPECT_EQ(f.stats.ffnSparsitySamples, 0u);

    reuse.run(f.blk, f.input(2), 1, f.stats, f.observers);
    EXPECT_EQ(f.stats.ffnOpsDense, 2 * dense_after_one);
    // Sparse iteration executes ~10% of dense work.
    const OpCount sparse_exec = f.stats.ffnOpsExecuted
        - dense_after_one;
    EXPECT_LT(sparse_exec, dense_after_one / 5);
    EXPECT_GT(sparse_exec, 0u);
    EXPECT_EQ(f.stats.ffnSparsitySamples, 1u);
    EXPECT_NEAR(f.stats.meanFfnSparsity(), 0.9, 0.02);
}

TEST(FfnReuse, MaskObserverFires)
{
    Fixture f;
    FfnReuse reuse({2, 0.9}, false);
    int dense_calls = 0, sparse_calls = 0;
    f.observers.onFfnMask = [&](int block, const Bitmask2D &mask,
                                bool dense) {
        EXPECT_EQ(block, 0);
        EXPECT_EQ(mask.rows(), 8u);
        (dense ? dense_calls : sparse_calls) += 1;
    };
    for (int it = 0; it < 6; ++it)
        reuse.run(f.blk, f.input(it), it, f.stats, f.observers);
    EXPECT_EQ(dense_calls, 2);  // iterations 0 and 3
    EXPECT_EQ(sparse_calls, 4); // iterations 1, 2, 4, 5
}

TEST(FfnReuse, QuantizedPathTracksFloat)
{
    Fixture f;
    FfnReuse float_reuse({4, 0.8}, false);
    FfnReuse quant_reuse({4, 0.8}, true);
    const Matrix x1 = f.input(1);
    ExecStats s1, s2;
    float_reuse.run(f.blk, x1, 0, s1, f.observers);
    quant_reuse.run(f.blk, x1, 0, s2, f.observers);
    Matrix x2 = x1;
    Rng noise(5);
    for (auto &v : x2.data())
        v += 0.02f * static_cast<float>(noise.normal());
    const Matrix a = float_reuse.run(f.blk, x2, 1, s1, f.observers);
    const Matrix b = quant_reuse.run(f.blk, x2, 1, s2, f.observers);
    EXPECT_LT(relativeError(a, b), 0.05);
}

TEST(FfnReuse, GegluSupported)
{
    Rng rng(77);
    TransformerBlock blk(0, 24, 4, 4, true, rng);
    ExecStats stats;
    ExecObservers observers;
    FfnReuse reuse({3, 0.8}, false);
    Matrix x(8, 24);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix dense_out = reuse.run(blk, x, 0, stats, observers);
    ExecStats s;
    ExecObservers o;
    EXPECT_LT(maxAbsDiff(dense_out, denseFfnImpl(blk, x, false, s, o)),
              1e-3);
    Matrix x2 = x;
    Rng noise(6);
    for (auto &v : x2.data())
        v += 0.02f * static_cast<float>(noise.normal());
    const Matrix sparse_out = reuse.run(blk, x2, 1, stats, observers);
    const Matrix exact = denseFfnImpl(blk, x2, false, s, o);
    EXPECT_LT(relativeError(exact, sparse_out), 0.15);
}

TEST(FfnReuse, ResetClearsState)
{
    Fixture f;
    FfnReuse reuse({3, 0.9}, false);
    reuse.run(f.blk, f.input(1), 0, f.stats, f.observers);
    EXPECT_NE(reuse.state(0), nullptr);
    reuse.reset();
    EXPECT_EQ(reuse.state(0), nullptr);
}

} // namespace
} // namespace exion
