/**
 * @file
 * Unit tests for exion/tensor: Matrix, ops, QuantMatrix, Bitmask2D.
 */

#include <gtest/gtest.h>

#include "exion/common/rng.h"
#include "exion/tensor/bitmask.h"
#include "exion/tensor/ops.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{
namespace
{

TEST(Matrix, ConstructAndAccess)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
    m.at(0, 1) = 2.0f;
    EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
}

TEST(Matrix, MaxAbs)
{
    Matrix m(2, 2);
    m(0, 0) = -3.0f;
    m(1, 1) = 2.0f;
    EXPECT_FLOAT_EQ(m.maxAbs(), 3.0f);
}

TEST(Ops, MatmulSmall)
{
    Matrix a(2, 3);
    Matrix b(3, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data().begin());
    std::copy(bv, bv + 6, b.data().begin());
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Ops, MatmulTransposedMatchesMatmul)
{
    Rng rng(3);
    Matrix a(5, 7), b(4, 7);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const Matrix direct = matmulTransposed(a, b);
    const Matrix via_t = matmul(a, transpose(b));
    EXPECT_LT(maxAbsDiff(direct, via_t), 1e-4);
}

TEST(Ops, TransposeInvolution)
{
    Rng rng(5);
    Matrix a(6, 4);
    a.fillNormal(rng, 0.0f, 1.0f);
    EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Ops, AddSubScale)
{
    Matrix a(1, 3), b(1, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    b(0, 0) = 4;
    b(0, 1) = 5;
    b(0, 2) = 6;
    const Matrix s = add(a, b);
    EXPECT_FLOAT_EQ(s(0, 2), 9.0f);
    const Matrix d = sub(b, a);
    EXPECT_FLOAT_EQ(d(0, 0), 3.0f);
    const Matrix sc = scale(a, 2.0f);
    EXPECT_FLOAT_EQ(sc(0, 1), 4.0f);
}

TEST(Ops, AddRowVectorToRowsMatchesWholeMatrixOnSegments)
{
    Rng rng(11);
    Matrix stacked(6, 4);
    stacked.fillNormal(rng, 0.0f, 1.0f);
    Matrix row(1, 4);
    row.fillNormal(rng, 0.0f, 1.0f);

    // Segment application == slicing, addRowVector, pasting back —
    // bit for bit (the cohort forward relies on this).
    Matrix via_segment = stacked;
    addRowVectorToRows(via_segment, row, 2, 3);
    Matrix slice = sliceRows(stacked, 2, 3);
    addRowVector(slice, row);
    Matrix expected = stacked;
    pasteRows(expected, slice, 2);
    for (Index e = 0; e < expected.size(); ++e)
        EXPECT_EQ(via_segment.data()[e], expected.data()[e]);

    // Covering every row reproduces addRowVector exactly.
    Matrix whole = stacked;
    addRowVector(whole, row);
    Matrix all = stacked;
    addRowVectorToRows(all, row, 0, stacked.rows());
    for (Index e = 0; e < whole.size(); ++e)
        EXPECT_EQ(all.data()[e], whole.data()[e]);
}

TEST(Ops, SliceAndPaste)
{
    Rng rng(7);
    Matrix a(8, 6);
    a.fillNormal(rng, 0.0f, 1.0f);
    const Matrix rows = sliceRows(a, 2, 3);
    EXPECT_EQ(rows.rows(), 3u);
    EXPECT_FLOAT_EQ(rows(0, 0), a(2, 0));
    const Matrix cols = sliceCols(a, 1, 2);
    EXPECT_EQ(cols.cols(), 2u);
    EXPECT_FLOAT_EQ(cols(5, 1), a(5, 2));

    Matrix target(8, 6, 0.0f);
    pasteRows(target, rows, 2);
    EXPECT_FLOAT_EQ(target(3, 4), a(3, 4));
    EXPECT_FLOAT_EQ(target(0, 0), 0.0f);
}

TEST(Ops, QuantMatmulApproximatesFloat)
{
    Rng rng(9);
    Matrix a(12, 20), b(20, 8);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const Matrix exact = matmul(a, b);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    const Matrix approx = matmulQuant(qa, qb);
    // INT12 round-trip error over a 20-deep dot product stays small.
    EXPECT_LT(maxAbsDiff(exact, approx), 0.05);
}

TEST(QuantMatrix, RoundTrip)
{
    Rng rng(11);
    Matrix a(4, 4);
    a.fillNormal(rng, 0.0f, 3.0f);
    const QuantMatrix q = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const Matrix back = q.toFloat();
    EXPECT_LT(maxAbsDiff(a, back), q.scale() * 0.51);
}

TEST(Bitmask, SetGetCount)
{
    Bitmask2D m(5, 9);
    EXPECT_EQ(m.countOnes(), 0u);
    m.set(0, 0, true);
    m.set(4, 8, true);
    m.set(2, 3, true);
    EXPECT_TRUE(m.get(4, 8));
    EXPECT_FALSE(m.get(4, 7));
    EXPECT_EQ(m.countOnes(), 3u);
    m.set(2, 3, false);
    EXPECT_EQ(m.countOnes(), 2u);
}

TEST(Bitmask, SparsityAndColumns)
{
    Bitmask2D m(4, 4);
    for (Index r = 0; r < 4; ++r)
        m.set(r, 1, true);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.75);
    EXPECT_EQ(m.columnOnes(1), 4u);
    EXPECT_TRUE(m.columnEmpty(0));
    EXPECT_FALSE(m.columnEmpty(1));
    EXPECT_EQ(m.rowOnes(2), 1u);
}

TEST(Bitmask, ColumnSlice16)
{
    Bitmask2D m(20, 2);
    m.set(0, 0, true);
    m.set(15, 0, true);
    m.set(16, 0, true);
    EXPECT_EQ(m.columnSlice16(0, 0), static_cast<u16>(0x8001));
    EXPECT_EQ(m.columnSlice16(0, 16), static_cast<u16>(0x0001));
    EXPECT_EQ(m.columnSlice16(1, 0), 0u);
}

TEST(Bitmask, OrWith)
{
    Bitmask2D a(2, 2), b(2, 2);
    a.set(0, 0, true);
    b.set(1, 1, true);
    a.orWith(b);
    EXPECT_TRUE(a.get(0, 0));
    EXPECT_TRUE(a.get(1, 1));
    EXPECT_EQ(a.countOnes(), 2u);
}

/** Property sweep: packed bitmask behaves like a bool matrix. */
class BitmaskProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitmaskProperty, MatchesReferenceBoolMatrix)
{
    const int seed = GetParam();
    Rng rng(seed);
    const Index rows = 1 + rng.uniformInt(40);
    const Index cols = 1 + rng.uniformInt(70);
    Bitmask2D mask(rows, cols);
    std::vector<std::vector<bool>> ref(rows,
                                       std::vector<bool>(cols, false));
    for (int i = 0; i < 300; ++i) {
        const Index r = rng.uniformInt(rows);
        const Index c = rng.uniformInt(cols);
        const bool v = rng.bernoulli(0.5);
        mask.set(r, c, v);
        ref[r][c] = v;
    }
    u64 ones = 0;
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c) {
            EXPECT_EQ(mask.get(r, c), ref[r][c]);
            ones += ref[r][c] ? 1 : 0;
        }
    EXPECT_EQ(mask.countOnes(), ones);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmaskProperty,
                         ::testing::Range(0, 12));

} // namespace
} // namespace exion
