/**
 * @file
 * Cohort-stepping tests: bit-identity of stacked execution against
 * solo runs for every benchmark and ablation mode, cohort-of-1
 * degeneracy, late joiners at iteration boundaries, mid-flight
 * removal, per-member stats partitioning, and the multi-segment
 * network forward.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exion/common/rng.h"
#include "exion/model/pipeline.h"
#include "exion/serve/request.h"
#include "exion/sparsity/cohort_executor.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

/** Solo run of one request, mirroring the serving layer's executor
    construction for the mode. */
struct SoloResult
{
    Matrix output;
    ExecStats stats;
};

SparseExecutor::Options
optionsFor(const ModelConfig &cfg, ExecMode mode, bool quantize)
{
    const bool ffnr =
        mode == ExecMode::FfnReuseOnly || mode == ExecMode::Exion;
    const bool ep = mode == ExecMode::EpOnly || mode == ExecMode::Exion;
    return SparseExecutor::fromConfig(cfg, ffnr, ep, quantize);
}

SoloResult
runSolo(const DiffusionPipeline &pipe, ExecMode mode, bool quantize,
        u64 seed)
{
    SoloResult out;
    if (mode == ExecMode::Dense) {
        DenseExecutor exec(quantize);
        out.output = pipe.run(exec, seed);
        out.stats = exec.stats();
    } else {
        SparseExecutor exec(optionsFor(pipe.config(), mode, quantize));
        out.output = pipe.run(exec, seed);
        out.stats = exec.stats();
    }
    return out;
}

void
expectSameStats(const ExecStats &a, const ExecStats &b)
{
    EXPECT_EQ(a.qkvOpsDense, b.qkvOpsDense);
    EXPECT_EQ(a.qkvOpsExecuted, b.qkvOpsExecuted);
    EXPECT_EQ(a.attnOpsDense, b.attnOpsDense);
    EXPECT_EQ(a.attnOpsExecuted, b.attnOpsExecuted);
    EXPECT_EQ(a.ffnOpsDense, b.ffnOpsDense);
    EXPECT_EQ(a.ffnOpsExecuted, b.ffnOpsExecuted);
    EXPECT_EQ(a.ffnSparsitySum, b.ffnSparsitySum);
    EXPECT_EQ(a.ffnSparsitySamples, b.ffnSparsitySamples);
    EXPECT_EQ(a.scoreSparsitySum, b.scoreSparsitySum);
    EXPECT_EQ(a.scoreSparsitySamples, b.scoreSparsitySamples);
    EXPECT_EQ(a.qRowsSkipped, b.qRowsSkipped);
    EXPECT_EQ(a.kColsSkipped, b.kColsSkipped);
    EXPECT_EQ(a.vColsSkipped, b.vColsSkipped);
}

void
expectSameMatrix(const Matrix &a, const Matrix &b, const char *label)
{
    ASSERT_EQ(a.rows(), b.rows()) << label;
    ASSERT_EQ(a.cols(), b.cols()) << label;
    for (Index e = 0; e < a.size(); ++e)
        ASSERT_EQ(a.data()[e], b.data()[e])
            << label << " element " << e;
}

/**
 * A cohort of n members must reproduce n sequential solo runs bit for
 * bit — outputs and per-member op accounting — in every ablation
 * mode.
 */
void
expectCohortMatchesSolo(ModelConfig cfg, Index n)
{
    // Short runs that still cross dense/sparse FFN-Reuse boundaries.
    cfg.iterations = 3;
    cfg.ffnReuse.denseInterval = 1;
    const DiffusionPipeline pipe(cfg);

    const ExecMode modes[] = {ExecMode::Dense, ExecMode::EpOnly,
                              ExecMode::FfnReuseOnly, ExecMode::Exion};
    for (ExecMode mode : modes) {
        CohortExecutor exec(optionsFor(cfg, mode, /*quantize=*/false));
        CohortRun run(pipe, exec);
        std::vector<Index> slots;
        for (Index i = 0; i < n; ++i)
            slots.push_back(run.join(1000 + 17 * i));
        while (!run.done())
            run.step();
        for (Index i = 0; i < n; ++i) {
            const SoloResult solo =
                runSolo(pipe, mode, false, 1000 + 17 * i);
            SCOPED_TRACE(cfg.name + " mode "
                         + execModeName(mode) + " member "
                         + std::to_string(i));
            expectSameMatrix(run.takeResult(slots[i]), solo.output,
                             "output");
            expectSameStats(exec.slotContext(slots[i]).stats,
                            solo.stats);
        }
    }
}

TEST(Cohort, MatchesSolo_MLD)
{
    expectCohortMatchesSolo(makeConfig(Benchmark::MLD, Scale::Reduced),
                            4);
}

TEST(Cohort, MatchesSolo_MDM)
{
    expectCohortMatchesSolo(makeConfig(Benchmark::MDM, Scale::Reduced),
                            4);
}

TEST(Cohort, MatchesSolo_EDGE)
{
    expectCohortMatchesSolo(makeConfig(Benchmark::EDGE, Scale::Reduced),
                            4);
}

TEST(Cohort, MatchesSolo_MakeAnAudio)
{
    // UNet with ResBlocks, GEGLU and pooling across stacked segments.
    expectCohortMatchesSolo(
        makeConfig(Benchmark::MakeAnAudio, Scale::Reduced), 4);
}

TEST(Cohort, MatchesSolo_StableDiffusion)
{
    expectCohortMatchesSolo(
        makeConfig(Benchmark::StableDiffusion, Scale::Reduced), 4);
}

TEST(Cohort, MatchesSolo_DiT)
{
    expectCohortMatchesSolo(makeConfig(Benchmark::DiT, Scale::Reduced),
                            4);
}

TEST(Cohort, MatchesSolo_VideoCrafter2)
{
    expectCohortMatchesSolo(
        makeConfig(Benchmark::VideoCrafter2, Scale::Reduced), 4);
}

TEST(Cohort, QuantizedModesMatchSolo)
{
    // INT12 scales are calibrated per member matrix; the cohort must
    // fall back to per-member execution and stay bit-identical.
    ModelConfig cfg = makeTinyConfig(8, 16, 2, 4);
    cfg.ffnReuse.denseInterval = 1;
    const DiffusionPipeline pipe(cfg);
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::EpOnly,
                              ExecMode::FfnReuseOnly, ExecMode::Exion};
    for (ExecMode mode : modes) {
        CohortExecutor exec(optionsFor(cfg, mode, /*quantize=*/true));
        CohortRun run(pipe, exec);
        for (Index i = 0; i < 3; ++i)
            run.join(7 + i);
        while (!run.done())
            run.step();
        for (Index i = 0; i < 3; ++i) {
            SCOPED_TRACE(execModeName(mode) + " member "
                         + std::to_string(i));
            const SoloResult solo = runSolo(pipe, mode, true, 7 + i);
            expectSameMatrix(run.takeResult(i), solo.output, "output");
            expectSameStats(exec.slotContext(i).stats, solo.stats);
        }
    }
}

TEST(Cohort, CohortOfOneEqualsSoloPath)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 5);
    const DiffusionPipeline pipe(cfg);
    CohortExecutor exec(
        optionsFor(cfg, ExecMode::Exion, /*quantize=*/false));
    const std::vector<Matrix> outs = pipe.runCohort(exec, {42});
    ASSERT_EQ(outs.size(), 1u);
    const SoloResult solo = runSolo(pipe, ExecMode::Exion, false, 42);
    expectSameMatrix(outs[0], solo.output, "output");
}

TEST(Cohort, RunCohortConvenienceMatchesSolos)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 4);
    const DiffusionPipeline pipe(cfg);
    CohortExecutor exec(
        optionsFor(cfg, ExecMode::Dense, /*quantize=*/false));
    const std::vector<u64> seeds = {5, 6, 7, 8, 9};
    const std::vector<Matrix> outs = pipe.runCohort(exec, seeds);
    ASSERT_EQ(outs.size(), seeds.size());
    for (Index i = 0; i < seeds.size(); ++i) {
        const SoloResult solo =
            runSolo(pipe, ExecMode::Dense, false, seeds[i]);
        expectSameMatrix(outs[i], solo.output, "output");
    }
}

TEST(Cohort, LateJoinerAttachesAtIterationBoundary)
{
    // A member joining after two steps starts its own iteration 0
    // while the earlier members run ahead (different timesteps in one
    // stacked forward) — and everyone still matches their solo run.
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 6);
    const DiffusionPipeline pipe(cfg);
    CohortExecutor exec(
        optionsFor(cfg, ExecMode::Exion, /*quantize=*/false));
    CohortRun run(pipe, exec);
    const Index a = run.join(100);
    const Index b = run.join(200);
    run.step();
    run.step();
    EXPECT_EQ(run.iterationOf(a), 2);
    const Index late = run.join(300);
    EXPECT_EQ(run.iterationOf(late), 0);
    while (!run.done())
        run.step();
    EXPECT_TRUE(run.isFinished(late));

    const u64 seeds[] = {100, 200, 300};
    const Index slots[] = {a, b, late};
    for (int i = 0; i < 3; ++i) {
        SCOPED_TRACE("member " + std::to_string(i));
        const SoloResult solo =
            runSolo(pipe, ExecMode::Exion, false, seeds[i]);
        expectSameMatrix(run.takeResult(slots[i]), solo.output,
                         "output");
        expectSameStats(exec.slotContext(slots[i]).stats, solo.stats);
    }
}

TEST(Cohort, LeaveRemovesOnlyThatRow)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 5);
    const DiffusionPipeline pipe(cfg);
    CohortExecutor exec(
        optionsFor(cfg, ExecMode::Exion, /*quantize=*/false));
    CohortRun run(pipe, exec);
    const Index a = run.join(1);
    const Index victim = run.join(2);
    const Index c = run.join(3);
    run.step();
    run.leave(victim);
    EXPECT_FALSE(run.isActive(victim));
    EXPECT_EQ(run.activeCount(), 2u);
    while (!run.done())
        run.step();

    EXPECT_FALSE(run.isFinished(victim));
    for (const auto &[slot, seed] :
         {std::pair<Index, u64>{a, 1}, std::pair<Index, u64>{c, 3}}) {
        const SoloResult solo =
            runSolo(pipe, ExecMode::Exion, false, seed);
        expectSameMatrix(run.takeResult(slot), solo.output, "output");
    }
}

TEST(Cohort, AttachedStateOutlivesExecutorSlots)
{
    // The serving layer binds its own per-request state; stats must
    // land there, not in executor-owned storage.
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 4);
    const DiffusionPipeline pipe(cfg);
    CohortExecutor exec(
        optionsFor(cfg, ExecMode::Exion, /*quantize=*/false));
    CohortRun run(pipe, exec);
    ExecContext ctx;
    FfnReuseState ffn;
    const Index slot = run.join(11);
    exec.attachSlot(slot, ctx, ffn);
    while (!run.done())
        run.step();
    exec.releaseSlot(slot);

    const SoloResult solo = runSolo(pipe, ExecMode::Exion, false, 11);
    expectSameStats(ctx.stats, solo.stats);
    EXPECT_FALSE(ffn.blocks.empty());
}

TEST(Cohort, MultiSegmentForwardMatchesPerSegment)
{
    // The stacked network forward itself (heterogeneous timesteps)
    // equals two solo forwards pasted together.
    const ModelConfig cfg =
        makeConfig(Benchmark::MakeAnAudio, Scale::Reduced);
    const DiffusionPipeline pipe(cfg);
    Rng rng(9);
    Matrix a(cfg.latentTokens, cfg.latentDim);
    a.fillNormal(rng, 0.0f, 1.0f);
    Matrix b(cfg.latentTokens, cfg.latentDim);
    b.fillNormal(rng, 0.0f, 1.0f);
    Matrix stacked(2 * cfg.latentTokens, cfg.latentDim);
    pasteRows(stacked, a, 0);
    pasteRows(stacked, b, cfg.latentTokens);

    CohortExecutor exec(
        optionsFor(cfg, ExecMode::Dense, /*quantize=*/false));
    exec.beginCohortStep({0, 1}, {0, 3});
    const Matrix eps = pipe.network().forward(
        stacked, std::vector<int>{pipe.scheduler().timestep(0),
                                  pipe.scheduler().timestep(3)},
        exec);

    DenseExecutor solo;
    const Matrix ea =
        pipe.network().forward(a, pipe.scheduler().timestep(0), solo);
    const Matrix eb =
        pipe.network().forward(b, pipe.scheduler().timestep(3), solo);
    expectSameMatrix(sliceRows(eps, 0, cfg.latentTokens), ea, "seg a");
    expectSameMatrix(sliceRows(eps, cfg.latentTokens, cfg.latentTokens),
                     eb, "seg b");
}

TEST(Cohort, CancellableSoloRunStopsAtBoundary)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 8);
    const DiffusionPipeline pipe(cfg);
    DenseExecutor exec;
    std::atomic<bool> cancel{false};
    RunOptions opts;
    opts.noiseSeed = 3;
    opts.cancel = &cancel;
    opts.onIteration = [&cancel](int i, const Matrix &) {
        if (i == 2)
            cancel = true;
    };
    const RunOutcome outcome = pipe.runCancellable(exec, opts);
    EXPECT_TRUE(outcome.cancelled);
    EXPECT_EQ(outcome.iterations, 3);

    // Without a flag the outcome matches run() bit for bit.
    DenseExecutor fresh;
    RunOptions plain;
    plain.noiseSeed = 3;
    const RunOutcome full = pipe.runCancellable(fresh, plain);
    EXPECT_FALSE(full.cancelled);
    EXPECT_EQ(full.iterations, cfg.iterations);
    DenseExecutor ref;
    expectSameMatrix(full.latent, pipe.run(ref, u64{3}), "full run");
}

} // namespace
} // namespace exion
