/**
 * @file
 * Cross-module integration tests: reduced-scale benchmarks end to end,
 * accuracy under the EXION optimisations (Table I shape), sparsity
 * targets, and the inter-iteration similarity the paper builds on.
 */

#include <gtest/gtest.h>

#include "exion/accel/functional_device.h"
#include "exion/common/rng.h"
#include "exion/metrics/metrics.h"
#include "exion/model/pipeline.h"
#include "exion/sparsity/sparse_executor.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(Integration, FfnReuseAccuracyAcrossBenchmarks)
{
    // Table I's core claim: FFN-Reuse alone leaves the generated
    // output close to the vanilla model on every benchmark family.
    for (Benchmark b : {Benchmark::MLD, Benchmark::DiT}) {
        ModelConfig cfg = makeConfig(b, Scale::Reduced);
        cfg.iterations = 20; // keep the test fast
        DiffusionPipeline pipe(cfg);

        DenseExecutor vanilla;
        const Matrix ref = pipe.run(vanilla, 11);

        auto opt = SparseExecutor::fromConfig(cfg, true, false, false);
        SparseExecutor ffnr(opt);
        const Matrix out = pipe.run(ffnr, 11);

        EXPECT_GT(psnr(ref, out), 18.0) << benchmarkName(b);
        EXPECT_GT(cosineSimilarity(ref, out), 0.95) << benchmarkName(b);
        EXPECT_NEAR(ffnr.stats().meanFfnSparsity(),
                    cfg.ffnReuse.targetSparsity, 0.03)
            << benchmarkName(b);
    }
}

TEST(Integration, InterIterationSimilarityIsHigh)
{
    // Fig. 7: cosine similarity of GELU outputs between adjacent
    // iterations is high — the basis of FFN-Reuse.
    ModelConfig cfg = makeConfig(Benchmark::DiT, Scale::Reduced);
    cfg.iterations = 24;
    DiffusionPipeline pipe(cfg);
    DenseExecutor exec;
    std::vector<Matrix> hidden_history;
    exec.observers.onFfnHidden = [&](int block, const Matrix &h) {
        if (block == 1)
            hidden_history.push_back(h);
    };
    pipe.run(exec, 3);
    ASSERT_EQ(hidden_history.size(), 24u);
    // Early iterations take the largest scheduler steps; similarity
    // tightens as denoising progresses (Fig. 7's diagonal band).
    for (std::size_t i = 3; i < hidden_history.size(); ++i) {
        EXPECT_GT(cosineSimilarity(hidden_history[i - 1],
                                   hidden_history[i]),
                  0.88)
            << "iterations " << i - 1 << " -> " << i;
    }
}

TEST(Integration, WorkReductionMatchesClosedForm)
{
    // Fig. 6: executing one dense + N sparse iterations cuts FFN ops
    // by approximately 1 - (1 + N(1-s)) / (N+1).
    ModelConfig cfg = makeConfig(Benchmark::MLD, Scale::Reduced);
    cfg.iterations = 20;
    DiffusionPipeline pipe(cfg);
    auto opt = SparseExecutor::fromConfig(cfg, true, false, false);
    SparseExecutor exec(opt);
    pipe.run(exec, 5);

    const double s = exec.stats().meanFfnSparsity();
    const int n = cfg.ffnReuse.denseInterval;
    // The run has ceil(20 / (N+1)) dense iterations.
    const int dense = (cfg.iterations + n) / (n + 1);
    const int sparse = cfg.iterations - dense;
    const double expect_fraction =
        (dense + sparse * (1.0 - s)) / cfg.iterations;
    const double measured_fraction =
        static_cast<double>(exec.stats().ffnOpsExecuted)
        / static_cast<double>(exec.stats().ffnOpsDense);
    EXPECT_NEAR(measured_fraction, expect_fraction, 0.05);
}

TEST(Integration, MeasuredMasksFlowThroughConMerge)
{
    // Masks captured from a real reduced-scale run execute correctly
    // through ConMerge + SDUE against the dense reference.
    ModelConfig cfg = makeTinyConfig(24, 32, 1, 6);
    cfg.ffnReuse = {2, 0.9};
    DiffusionPipeline pipe(cfg);
    auto opt = SparseExecutor::fromConfig(cfg, true, false, false);
    SparseExecutor exec(opt);

    std::vector<Bitmask2D> masks;
    exec.observers.onFfnMask = [&](int, const Bitmask2D &mask,
                                   bool dense) {
        if (!dense)
            masks.push_back(mask);
    };
    pipe.run(exec, 9);
    ASSERT_FALSE(masks.empty());

    Rng rng(17);
    Matrix input(masks[0].rows(), 32), weight(32, masks[0].cols());
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);
    const SparseMatmulResult result =
        sparseMatmulViaConMerge(input, weight, masks[0]);
    const Matrix reference = matmul(input, weight);
    for (Index r = 0; r < masks[0].rows(); ++r) {
        for (Index c = 0; c < masks[0].cols(); ++c) {
            if (masks[0].get(r, c)) {
                ASSERT_NEAR(result.output(r, c), reference(r, c),
                            1e-3);
            }
        }
    }
    EXPECT_LT(result.conStats.mergedRemainingFraction(), 1.0);
}

TEST(Integration, AllOptimisationsQuantizedStillGenerates)
{
    // The full EXION stack (FFN-Reuse + EP + INT12) on a UNet-type
    // reduced benchmark produces output correlated with vanilla.
    ModelConfig cfg = makeConfig(Benchmark::MakeAnAudio,
                                 Scale::Reduced);
    cfg.iterations = 12;
    DiffusionPipeline pipe(cfg);
    DenseExecutor vanilla;
    const Matrix ref = pipe.run(vanilla, 21);

    auto opt = SparseExecutor::fromConfig(cfg, true, true, true);
    SparseExecutor exion(opt);
    const Matrix out = pipe.run(exion, 21);
    EXPECT_GT(cosineSimilarity(ref, out), 0.85);
    EXPECT_GT(psnr(ref, out), 10.0);
}

TEST(Integration, EpAggressiveTopKSkipsColumns)
{
    ModelConfig cfg = makeConfig(Benchmark::MDM, Scale::Reduced);
    cfg.iterations = 6;
    DiffusionPipeline pipe(cfg);
    auto opt = SparseExecutor::fromConfig(cfg, false, true, false);
    SparseExecutor exec(opt);
    pipe.run(exec, 31);
    const ExecStats &s = exec.stats();
    // MDM's k = 0.05 keeps 3 of 48 keys per row; unpopular key
    // columns skip their K/V projections (Section II-B).
    EXPECT_GT(s.kColsSkipped, 0u);
    EXPECT_GT(s.vColsSkipped, 0u);
    EXPECT_GT(s.meanScoreSparsity(), 0.9);
}

TEST(Integration, EpZeroThresholdOneHotsEveryRow)
{
    // q_th = 0 makes every row one-hot: Q projection is skipped for
    // all rows and K projection everywhere (only argmax V survives).
    ModelConfig cfg = makeTinyConfig(16, 32, 1, 2);
    cfg.ep = {0.0, 0.5};
    DiffusionPipeline pipe(cfg);
    auto opt = SparseExecutor::fromConfig(cfg, false, true, false);
    SparseExecutor exec(opt);
    pipe.run(exec, 31);
    const ExecStats &s = exec.stats();
    EXPECT_EQ(s.qRowsSkipped, s.qRowsTotal);
    EXPECT_EQ(s.kColsSkipped, s.kColsTotal);
    EXPECT_LT(s.vColsSkipped, s.vColsTotal);
    EXPECT_GT(s.meanScoreSparsity(), 0.99);
}

} // namespace
} // namespace exion
