/**
 * @file
 * Tests for ConMerge: column entries, the sorting buffer, the CVG, and
 * the full condensing+merging pipeline (Figs. 8, 9, 12, 13, 14).
 */

#include <gtest/gtest.h>

#include <set>

#include "exion/common/rng.h"
#include "exion/conmerge/pipeline.h"

namespace exion
{
namespace
{

Bitmask2D
randomMask(Index rows, Index cols, double density, u64 seed)
{
    Rng rng(seed);
    Bitmask2D mask(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c)
            if (rng.bernoulli(density))
                mask.set(r, c, true);
    return mask;
}

TEST(ColumnEntry, ExtractCondensesEmptySlices)
{
    Bitmask2D mask(16, 4);
    mask.set(0, 1, true);
    mask.set(5, 1, true);
    mask.set(15, 3, true);
    Index total = 0;
    const auto entries = extractEntries(mask, 0, &total);
    EXPECT_EQ(total, 4u);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].originCol, 1u);
    EXPECT_EQ(entries[0].bits, static_cast<u16>(0x0021));
    EXPECT_EQ(entries[1].originCol, 3u);
    EXPECT_EQ(entries[1].bits, static_cast<u16>(0x8000));
}

TEST(SortBuffer, ClassifierBoundaries)
{
    auto entry_with_ones = [](int n) {
        ColumnEntry e;
        e.bits = static_cast<u16>((1u << n) - 1);
        return e;
    };
    EXPECT_EQ(classifySparsity(entry_with_ones(1)),
              SparsityClass::HighSparse);
    EXPECT_EQ(classifySparsity(entry_with_ones(3)),
              SparsityClass::Sparse);
    EXPECT_EQ(classifySparsity(entry_with_ones(8)),
              SparsityClass::Dense);
    EXPECT_EQ(classifySparsity(entry_with_ones(14)),
              SparsityClass::HighDense);
}

TEST(SortBuffer, CondensesAllZeroEntries)
{
    SortBuffer buf(8);
    EXPECT_FALSE(buf.push(ColumnEntry{0, 0}));
    EXPECT_EQ(buf.condensedCount(), 1u);
    EXPECT_TRUE(buf.isEmpty());
}

TEST(SortBuffer, PopOrder)
{
    SortBuffer buf(8);
    buf.push(ColumnEntry{0, 0x0001});  // 1 one  -> HighSparse
    buf.push(ColumnEntry{1, 0xffff});  // 16     -> HighDense
    buf.push(ColumnEntry{2, 0x00ff});  // 8      -> Dense
    EXPECT_EQ(buf.popDensest().originCol, 1u);
    EXPECT_EQ(buf.popSparsest().originCol, 0u);
    EXPECT_EQ(buf.popDensest().originCol, 2u);
    EXPECT_TRUE(buf.isEmpty());
}

TEST(SortBuffer, OverflowToSparserClassThenExtra)
{
    SortBuffer buf(1);
    const ColumnEntry dense1{0, 0xffff};
    const ColumnEntry dense2{1, 0xfff7};
    const ColumnEntry dense3{2, 0xffef};
    buf.push(dense1); // HighDense
    buf.push(dense2); // HighDense full -> Dense class
    EXPECT_EQ(buf.classSize(SparsityClass::HighDense), 1u);
    EXPECT_EQ(buf.classSize(SparsityClass::Dense), 1u);
    buf.push(dense3);
    EXPECT_EQ(buf.classSize(SparsityClass::Sparse), 1u);
    EXPECT_EQ(buf.size(), 3u);
}

TEST(MergedTile, BaseInitPlacesOwnLanes)
{
    MergedTile tile;
    tile.initBase({ColumnEntry{7, 0x0005}});
    EXPECT_EQ(tile.positionsUsed(), 1u);
    EXPECT_TRUE(tile.cell(0, 0).occupied);
    EXPECT_TRUE(tile.cell(2, 0).occupied);
    EXPECT_FALSE(tile.cell(1, 0).occupied);
    EXPECT_EQ(tile.cell(0, 0).srcLane, 0);
    EXPECT_EQ(tile.cell(0, 0).originCol, 7u);
    tile.checkInvariants();
}

TEST(Cvg, MergeWithoutConflicts)
{
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x000f}}); // lanes 0-3
    Cvg cvg;
    const auto result = cvg.mergeBlock(
        tile, {ColumnEntry{5, 0x00f0}}, 1); // lanes 4-7: disjoint
    EXPECT_EQ(result.accepted, 1u);
    EXPECT_TRUE(result.rejected.empty());
    EXPECT_EQ(result.resolutionSteps, 0u);
    tile.checkInvariants();
    // All merged elements sit on their own lanes (original line).
    for (Index lane = 4; lane < 8; ++lane) {
        EXPECT_TRUE(tile.cell(lane, 0).occupied);
        EXPECT_EQ(tile.cell(lane, 0).srcLane, lane);
        EXPECT_EQ(tile.cell(lane, 0).wSlot, 1);
    }
    EXPECT_EQ(tile.cv(4), kCvUnset);
}

TEST(Cvg, ConflictDisplacesViaCv)
{
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x0003}}); // lanes 0,1 occupied
    Cvg cvg;
    const auto result = cvg.mergeBlock(
        tile, {ColumnEntry{9, 0x0001}}, 1); // lane 0 conflicts
    EXPECT_EQ(result.accepted, 1u);
    EXPECT_GE(result.resolutionSteps, 1u);
    tile.checkInvariants();
    // The displaced element landed on some free lane with CV set.
    bool found = false;
    for (Index lane = 0; lane < kLanes; ++lane) {
        const TileCell &c = tile.cell(lane, 0);
        if (c.occupied && c.wSlot == 1) {
            EXPECT_EQ(c.srcLane, 0);
            EXPECT_NE(lane, 0u);
            EXPECT_EQ(tile.cv(lane), 0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Cvg, SaturatedPositionRejects)
{
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0xffff}}); // fully dense base
    Cvg cvg;
    const auto result = cvg.mergeBlock(tile, {ColumnEntry{9, 0x0001}},
                                       1);
    EXPECT_EQ(result.accepted, 0u);
    ASSERT_EQ(result.rejected.size(), 1u);
    EXPECT_EQ(result.rejected[0].originCol, 9u);
    tile.checkInvariants();
}

TEST(Cvg, CvSlotConstraintForcesRejection)
{
    // Occupy every lane except lane 2 in position 0, and make the
    // candidate conflict on two sources: only one empty lane exists,
    // so only one displaced element fits; the pass must reject.
    MergedTile tile;
    tile.initBase({ColumnEntry{0, static_cast<u16>(~(1u << 2))}});
    Cvg cvg;
    const auto result = cvg.mergeBlock(tile, {ColumnEntry{9, 0x0003}},
                                       1);
    EXPECT_EQ(result.accepted, 0u);
    EXPECT_EQ(result.rejected.size(), 1u);
    tile.checkInvariants();
}

TEST(Cvg, CvReuseAcrossPositions)
{
    // Two positions, conflicts from the same source lane: the second
    // displaced element can reuse the CV set by the first only if it
    // lands on the same lane.
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x0001}, ColumnEntry{1, 0x0001}});
    Cvg cvg;
    const auto result = cvg.mergeBlock(
        tile,
        {ColumnEntry{8, 0x0001}, ColumnEntry{9, 0x0001}}, 1);
    EXPECT_EQ(result.accepted, 2u);
    tile.checkInvariants();
    // Exactly one lane carries a CV for source 0 (reused), or two
    // lanes with identical CV value 0 — either way every CV set must
    // be 0.
    for (Index lane = 0; lane < kLanes; ++lane) {
        if (tile.cv(lane) != kCvUnset) {
            EXPECT_EQ(tile.cv(lane), 0);
        }
    }
}

TEST(Pipeline, AllZeroMaskProducesNothing)
{
    Bitmask2D mask(32, 64);
    ConMergePipeline pipeline;
    const ConMergeStats stats = pipeline.processMask(mask);
    EXPECT_EQ(stats.positionsUsed, 0u);
    EXPECT_EQ(stats.tiles, 0u);
    EXPECT_DOUBLE_EQ(stats.condenseRemainingFraction(), 0.0);
}

TEST(Pipeline, DenseMaskKeepsEveryColumn)
{
    Bitmask2D mask(16, 48);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 48; ++c)
            mask.set(r, c, true);
    ConMergePipeline pipeline;
    const ConMergeStats stats = pipeline.processMask(mask);
    EXPECT_EQ(stats.positionsUsed, 48u);
    EXPECT_DOUBLE_EQ(stats.mergedRemainingFraction(), 1.0);
}

TEST(Pipeline, SparseMaskCompactsTowardsOriginLimit)
{
    // 10% density: merging should get within reach of the 3-origin
    // bound (1/3 of the non-empty entries).
    const Bitmask2D mask = randomMask(64, 256, 0.10, 5);
    ConMergePipeline pipeline;
    const ConMergeStats stats = pipeline.processMask(mask);
    EXPECT_LT(stats.mergedRemainingFraction(), 0.55);
    EXPECT_GE(3 * stats.positionsUsed + 3,
              stats.entriesAfterCondense);
}

TEST(Pipeline, EveryMaskedElementCoveredExactlyOnce)
{
    const Bitmask2D mask = randomMask(48, 96, 0.15, 11);
    ConMergePipeline pipeline;
    for (Index g = 0; g < 3; ++g) {
        const GroupResult group = pipeline.processGroup(mask, g * 16);
        // Collect covered (srcRow, originCol) pairs across tiles.
        std::set<std::pair<Index, Index>> covered;
        for (const auto &tile : group.tiles) {
            tile.checkInvariants();
            for (Index lane = 0; lane < kLanes; ++lane) {
                for (Index pos = 0; pos < kTileCols; ++pos) {
                    const TileCell &c = tile.cell(lane, pos);
                    if (!c.occupied)
                        continue;
                    const auto key = std::make_pair(
                        static_cast<Index>(c.srcLane), c.originCol);
                    EXPECT_TRUE(covered.insert(key).second)
                        << "duplicate element lane-row " << c.srcLane
                        << " col " << c.originCol;
                }
            }
        }
        // Exactly the mask's set bits of this group are covered.
        Index expected = 0;
        for (Index r = 0; r < kLanes && g * 16 + r < mask.rows(); ++r)
            for (Index c = 0; c < mask.cols(); ++c)
                expected += mask.get(g * 16 + r, c) ? 1 : 0;
        EXPECT_EQ(covered.size(), expected);
    }
}

TEST(Pipeline, SortedMergingUsesFewerCycles)
{
    // Fig. 12: sparsity-aware pairing cuts CVG cycles substantially.
    Rng rng(23);
    Cycle sorted_total = 0, random_total = 0;
    for (int trial = 0; trial < 6; ++trial) {
        // Mixed-density mask: half dense columns, half sparse.
        Bitmask2D mask(16, 128);
        for (Index c = 0; c < 128; ++c) {
            const double density = (c % 2 == 0) ? 0.75 : 0.08;
            for (Index r = 0; r < 16; ++r)
                if (rng.bernoulli(density))
                    mask.set(r, c, true);
        }
        ConMergeConfig sorted_cfg;
        sorted_cfg.sortBySparsity = true;
        ConMergeConfig random_cfg;
        random_cfg.sortBySparsity = false;
        sorted_total += ConMergePipeline(sorted_cfg)
                            .processMask(mask).mergeCycles;
        random_total += ConMergePipeline(random_cfg)
                            .processMask(mask).mergeCycles;
    }
    EXPECT_LT(sorted_total, random_total);
}

TEST(Cvg, CvPressureFromSingleSourceRow)
{
    // Adversarial case: every candidate conflicts on the same source
    // lane. Displacements all need CV = 0; distinct destination lanes
    // each take their own slot, so acceptance is bounded only by free
    // cells — and every commit must still satisfy checkInvariants.
    MergedTile tile;
    std::vector<ColumnEntry> base;
    for (Index pos = 0; pos < 8; ++pos)
        base.push_back(ColumnEntry{pos, 0x0001}); // lane 0 everywhere
    tile.initBase(base);

    Cvg cvg;
    std::vector<std::optional<ColumnEntry>> candidates(8);
    for (Index pos = 0; pos < 8; ++pos)
        candidates[pos] = ColumnEntry{100 + pos, 0x0001}; // conflict
    const MergePassResult pass = cvg.mergeBlock(tile, candidates, 1);
    EXPECT_EQ(pass.accepted + pass.rejected.size(), 8u);
    EXPECT_GT(pass.accepted, 0u);
    tile.checkInvariants();
    // All written CVs route source lane 0.
    for (Index lane = 0; lane < kLanes; ++lane) {
        if (tile.cv(lane) != kCvUnset) {
            EXPECT_EQ(tile.cv(lane), 0);
        }
    }
}

TEST(Cvg, CvPressureFromDistinctSourceRows)
{
    // Candidates conflict on different source lanes; each displaced
    // element demands a distinct CV value, so the 16 single-slot CVs
    // are the binding constraint the paper designs around.
    MergedTile tile;
    std::vector<ColumnEntry> base;
    for (Index pos = 0; pos < 12; ++pos)
        base.push_back(
            ColumnEntry{pos, static_cast<u16>(1u << (pos % 12))});
    tile.initBase(base);

    Cvg cvg;
    std::vector<std::optional<ColumnEntry>> candidates(12);
    for (Index pos = 0; pos < 12; ++pos)
        candidates[pos] =
            ColumnEntry{200 + pos, static_cast<u16>(1u << (pos % 12))};
    const MergePassResult pass = cvg.mergeBlock(tile, candidates, 1);
    tile.checkInvariants();
    // Each accepted candidate consumed one CV slot for its source.
    Index cv_used = 0;
    for (Index lane = 0; lane < kLanes; ++lane)
        cv_used += tile.cv(lane) != kCvUnset ? 1 : 0;
    EXPECT_EQ(cv_used, pass.accepted);
    EXPECT_LE(pass.accepted, 12u);
}

/** Property sweep over densities: invariants always hold. */
class ConMergeDensitySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ConMergeDensitySweep, InvariantsAndCoverage)
{
    const double density = GetParam();
    const Bitmask2D mask = randomMask(32, 80, density, 31);
    ConMergePipeline pipeline;
    const ConMergeStats stats = pipeline.processMask(mask);

    // Physical positions can never exceed stored entries and never
    // undercut the 3-origin bound.
    EXPECT_LE(stats.positionsUsed, stats.entriesAfterCondense);
    EXPECT_GE(3 * stats.positionsUsed + 3,
              stats.entriesAfterCondense);

    for (Index g = 0; g < 2; ++g) {
        const GroupResult group = pipeline.processGroup(mask, g * 16);
        for (const auto &tile : group.tiles)
            tile.checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, ConMergeDensitySweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.25, 0.5,
                                           0.8, 0.97));

} // namespace
} // namespace exion
