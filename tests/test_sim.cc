/**
 * @file
 * Tests for the hardware component models: params, energy/area, DRAM,
 * SDUE, EPRE, CFSE.
 */

#include <gtest/gtest.h>

#include "exion/common/rng.h"
#include "exion/conmerge/pipeline.h"
#include "exion/sim/cfse.h"
#include "exion/sim/dram.h"
#include "exion/sim/energy.h"
#include "exion/sim/epre.h"
#include "exion/sim/sdue.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(Params, PeakTopsMatchesTableII)
{
    DscParams p;
    // One DSC peaks at 9.8 TOPS (Table II note 2).
    EXPECT_NEAR(p.peakTops(), 9.8, 0.1);
}

TEST(Params, DenseMmulCycles)
{
    DscParams p;
    // 16x16 outputs, K=24: one tile, one K step.
    EXPECT_EQ(denseMmulCycles(p, 16, 24, 16), 1u);
    // 32 rows -> two row tiles.
    EXPECT_EQ(denseMmulCycles(p, 32, 24, 16), 2u);
    // K=48 -> two K steps.
    EXPECT_EQ(denseMmulCycles(p, 16, 48, 16), 2u);
    // Partial tiles round up.
    EXPECT_EQ(denseMmulCycles(p, 17, 25, 17), 2u * 2u * 2u);
}

TEST(Energy, TableIIITotals)
{
    EnergyModel model{DscParams{}};
    EXPECT_NEAR(model.totalActivePowerMw(), 1511.43, 0.02);
    EXPECT_NEAR(model.totalAreaMm2(), 4.37, 0.001);
}

TEST(Energy, PerCycleDerivation)
{
    EnergyModel model{DscParams{}};
    // 957.97 mW at 0.8 GHz -> 1197.46 pJ per cycle.
    EXPECT_NEAR(model.activeEnergyPerCycle(DscComponent::Sdue),
                957.97 / 0.8, 0.01);
    EXPECT_LT(model.gatedEnergyPerCycle(DscComponent::Sdue),
              model.activeEnergyPerCycle(DscComponent::Sdue) * 0.15);
}

TEST(Energy, GatingSavesEnergy)
{
    EnergyModel model{DscParams{}};
    const EnergyPj full = model.sdueEnergy(1000, 1.0);
    const EnergyPj tenth = model.sdueEnergy(1000, 0.1);
    EXPECT_LT(tenth, full * 0.25);
    EXPECT_GT(tenth, 0.0);
}

TEST(Energy, DeviceAreaMatchesPaper)
{
    // EXION24: 24 DSCs + 64 MB GSC = 152.28 mm^2 (Section V-D).
    const double area = AreaModel::deviceAreaMm2(24,
                                                 64ull * 1024 * 1024);
    EXPECT_NEAR(area, 152.28, 2.0);
}

TEST(Dram, BandwidthAndLatency)
{
    DramModel dram(DramType::Lpddr5, 51.0);
    // 51 GB transfer takes ~1 second.
    EXPECT_NEAR(dram.transferSeconds(51ull * 1000 * 1000 * 1000), 1.0,
                0.01);
    // Small transfers are latency-bound.
    EXPECT_GT(dram.transferSeconds(64), 40e-9);
    EXPECT_EQ(dram.transferCycles(0, 0.8), 0u);
}

TEST(Dram, EnergyPerBit)
{
    DramModel dram(DramType::Gddr6, 819.0);
    EXPECT_NEAR(dram.transferEnergy(1), 8.0 * 6.0, 1e-9);
    EXPECT_EQ(dram.name(), "GDDR6");
}

TEST(Sdue, DenseStatsFullTiles)
{
    Sdue sdue{DscParams{}};
    const SdueRunStats stats = sdue.denseMmulStats(32, 48, 32);
    EXPECT_EQ(stats.tilePasses, 4u);
    EXPECT_EQ(stats.cycles, 4u * 2u);
    EXPECT_DOUBLE_EQ(stats.activeFraction(), 1.0);
}

TEST(Sdue, DenseStatsEdgeTiles)
{
    Sdue sdue{DscParams{}};
    const SdueRunStats stats = sdue.denseMmulStats(8, 24, 8);
    EXPECT_EQ(stats.tilePasses, 1u);
    // Only an 8x8 corner of the 16x16 array works.
    EXPECT_NEAR(stats.activeFraction(), 64.0 / 256.0, 1e-9);
}

TEST(Sdue, MergedTileExecutionMatchesReference)
{
    Rng rng(3);
    const Index m = 16, k = 40, n = 48;
    Matrix input(m, k), weight(k, n);
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);
    Bitmask2D mask(m, n);
    for (Index r = 0; r < m; ++r)
        for (Index c = 0; c < n; ++c)
            if (rng.bernoulli(0.2))
                mask.set(r, c, true);

    ConMergePipeline pipeline;
    const GroupResult group = pipeline.processGroup(mask, 0);
    Sdue sdue{DscParams{}};
    Matrix out(m, n);
    SdueRunStats stats;
    for (const auto &tile : group.tiles)
        stats.add(sdue.executeMergedTile(tile, input, weight, 0, out));

    const Matrix reference = matmul(input, weight);
    for (Index r = 0; r < m; ++r) {
        for (Index c = 0; c < n; ++c) {
            if (mask.get(r, c))
                EXPECT_NEAR(out(r, c), reference(r, c), 1e-3)
                    << "(" << r << "," << c << ")";
            else
                EXPECT_FLOAT_EQ(out(r, c), 0.0f);
        }
    }
    EXPECT_EQ(stats.tilePasses, group.tiles.size());
    EXPECT_GT(stats.activeFraction(), 0.0);
}

TEST(Sdue, MergedTileCyclesScaleWithK)
{
    Sdue sdue{DscParams{}};
    MergedTile tile;
    tile.initBase({ColumnEntry{0, 0x00ff}});
    EXPECT_EQ(sdue.mergedTileStats(tile, 24).cycles, 1u);
    EXPECT_EQ(sdue.mergedTileStats(tile, 25).cycles, 2u);
    EXPECT_EQ(sdue.mergedTileStats(tile, 240).cycles, 10u);
}

TEST(Epre, PredictionCyclesScale)
{
    Epre epre{DscParams{}};
    const Cycle small = epre.predictAttentionCycles(64, 256, 4);
    const Cycle large = epre.predictAttentionCycles(128, 256, 4);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 0u);
}

TEST(Cfse, OpCyclesAndModes)
{
    Cfse two_way{DscParams{}, true};
    Cfse one_way{DscParams{}, false};
    EXPECT_EQ(two_way.elementsPerCycle(), 32u);
    EXPECT_EQ(one_way.elementsPerCycle(), 16u);
    EXPECT_EQ(two_way.opCycles(CfseOp::ResidualAdd, 32), 1u);
    EXPECT_EQ(two_way.opCycles(CfseOp::Softmax, 32), 4u);
    EXPECT_EQ(one_way.opCycles(CfseOp::ResidualAdd, 32), 2u);
    // Softmax costs more passes than residual add.
    EXPECT_GT(cfsePasses(CfseOp::Softmax),
              cfsePasses(CfseOp::ResidualAdd));
}

} // namespace
} // namespace exion
