/**
 * @file
 * Tests for the GPU baseline and Cambricon-D comparator models.
 */

#include <gtest/gtest.h>

#include "exion/baseline/cambricon_d.h"
#include "exion/baseline/gpu_model.h"

namespace exion
{
namespace
{

TEST(GpuSpecs, MatchTableII)
{
    EXPECT_NEAR(edgeGpu().peakTops, 40.0, 0.1);
    EXPECT_NEAR(edgeGpu().bandwidthGbs, 68.0, 0.1);
    EXPECT_NEAR(edgeGpu().boardPowerW, 15.0, 0.1);
    EXPECT_NEAR(serverGpu().peakTops, 91.1, 0.1);
    EXPECT_NEAR(serverGpu().bandwidthGbs, 960.0, 0.1);
    EXPECT_NEAR(serverGpu().boardPowerW, 300.0, 0.1);
}

TEST(GpuModel, EfficiencyGrowsWithDims)
{
    GpuModel gpu(serverGpu());
    EXPECT_LT(gpu.gemmEfficiency(8, 256, 256),
              gpu.gemmEfficiency(256, 256, 256));
    EXPECT_LT(gpu.gemmEfficiency(256, 256, 256),
              gpu.gemmEfficiency(4096, 4096, 4096));
    EXPECT_LE(gpu.gemmEfficiency(8192, 8192, 8192), 0.76);
}

TEST(GpuModel, GemmTimeMonotone)
{
    GpuModel gpu(serverGpu());
    EXPECT_LT(gpu.gemmSeconds(64, 64, 64),
              gpu.gemmSeconds(512, 512, 512));
}

TEST(GpuModel, SmallModelIsOverheadBound)
{
    // MLD per-iteration compute is microseconds; launch + framework
    // overheads dominate (the source of the paper's huge gaps).
    GpuModel gpu(edgeGpu());
    const ModelConfig mld = makeConfig(Benchmark::MLD, Scale::Full);
    const GpuRunResult result = gpu.run(mld);
    const double per_iter = result.latencySeconds / mld.iterations;
    EXPECT_GT(per_iter, 1e-3);  // >1 ms per iteration
    EXPECT_LT(result.effectiveTops(), 0.5);
}

TEST(GpuModel, LargeModelApproachesRoofline)
{
    GpuModel gpu(serverGpu());
    const ModelConfig dit = makeConfig(Benchmark::DiT, Scale::Full);
    const GpuRunResult result = gpu.run(dit);
    // DiT's big GEMMs reach a meaningful fraction of peak.
    EXPECT_GT(result.effectiveTops(), 5.0);
    EXPECT_LT(result.effectiveTops(), serverGpu().peakTops);
}

TEST(GpuModel, EnergyBetweenIdleAndBoardPower)
{
    GpuModel gpu(serverGpu());
    const ModelConfig dit = makeConfig(Benchmark::DiT, Scale::Full);
    const GpuRunResult result = gpu.run(dit);
    const double avg_power = result.energyJ / result.latencySeconds;
    EXPECT_GE(avg_power, serverGpu().idlePowerW);
    EXPECT_LE(avg_power, serverGpu().boardPowerW + 1e-9);
}

TEST(GpuModel, BatchingImprovesThroughput)
{
    GpuModel gpu(edgeGpu());
    const ModelConfig mdm = makeConfig(Benchmark::MDM, Scale::Full);
    const GpuRunResult b1 = gpu.run(mdm, 1);
    const GpuRunResult b8 = gpu.run(mdm, 8);
    // 8x the work in less than 8x the time.
    EXPECT_LT(b8.latencySeconds, 8.0 * b1.latencySeconds);
    EXPECT_GT(b8.latencySeconds, b1.latencySeconds);
}

TEST(CambriconD, MatchesPublishedAnchors)
{
    CambriconDModel cambricon;
    const double sd = cambricon.speedupOverA100(
        makeConfig(Benchmark::StableDiffusion, Scale::Full));
    const double dit = cambricon.speedupOverA100(
        makeConfig(Benchmark::DiT, Scale::Full));
    // Fig. 19(b): 7.9x on SD, 3.3x on DiT.
    EXPECT_NEAR(dit, 3.3, 0.1);
    EXPECT_GT(sd, 4.5);
    EXPECT_LT(sd, 10.0);
    EXPECT_GT(sd, dit);
}

} // namespace
} // namespace exion
