/**
 * @file
 * SIMD kernel layer tests.
 *
 * Every vector table this build carries is held against the scalar
 * reference table on adversarial inputs: NaN/Inf payloads, signed
 * zeros, lengths that are not a multiple of any vector width, and
 * mask words with ragged tails. Exact-contract entries (axpy,
 * compares, integer reductions) must be bit-identical; dotF32 — the
 * Fast tier's reassociated reduction — is tolerance-checked. The
 * log-domain dot kernels are checked exhaustively against ldProduct
 * over the full INT12 operand range. On top of the kernels, the
 * tier plumbing (parse round-trips, table selection, process
 * default) and the Bitmask2D word-level API (words(), andPopcount,
 * writeRowBits, forEachSetBit*) are covered, the latter on 63/64/65
 * column shapes so every word-boundary case is exercised.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "exion/common/rng.h"
#include "exion/sparsity/log_domain.h"
#include "exion/tensor/bitmask.h"
#include "exion/tensor/gemm.h"
#include "exion/tensor/simd_dispatch.h"

namespace exion
{
namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/** Every vector table compiled into this build, with its name. */
std::vector<const SimdKernels *>
vectorTables()
{
    std::vector<const SimdKernels *> tables;
    if (simd::avx2Table())
        tables.push_back(simd::avx2Table());
    if (simd::avx512Table())
        tables.push_back(simd::avx512Table());
    if (simd::neonTable())
        tables.push_back(simd::neonTable());
    return tables;
}

/**
 * Lengths chosen so no vector width (4/8/16 lanes) divides them all:
 * empty, sub-width, exact widths, width+1, and multi-word sizes.
 */
const Index kLengths[] = {0,  1,  3,  4,  5,  7,  8,  9,  15, 16,
                          17, 31, 32, 33, 63, 64, 65, 100, 130};

/** Floats with NaN/Inf/signed-zero payloads sprinkled in. */
std::vector<float>
adversarialFloats(Index n, Rng &rng)
{
    std::vector<float> v(n);
    for (Index i = 0; i < n; ++i) {
        const double u = rng.uniform();
        if (u < 0.05)
            v[i] = kNan;
        else if (u < 0.10)
            v[i] = rng.uniform() < 0.5 ? kInf : -kInf;
        else if (u < 0.20)
            v[i] = rng.uniform() < 0.5 ? 0.0f : -0.0f;
        else
            v[i] = static_cast<float>(rng.uniform() * 4.0 - 2.0);
    }
    return v;
}

/**
 * Per-element bitwise equality, except positions where both sides
 * are NaN. Whether a value is NaN must always agree (the mul/add
 * semantics are lane-identical), but when an addition's accumulator
 * AND term are both NaN, IEEE 754 leaves the propagated payload
 * unspecified — hardware returns the first operand's payload, and
 * the compiler orders the scalar C chain's operands differently at
 * different optimisation levels — so payloads are only compared
 * when at most one side of the chain went NaN.
 */
bool
bitsEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i]) && std::isnan(b[i]))
            continue;
        unsigned ab, bb;
        std::memcpy(&ab, &a[i], sizeof ab);
        std::memcpy(&bb, &b[i], sizeof bb);
        if (ab != bb)
            return false;
    }
    return true;
}

/** Bitwise matrix equality (NaN-tolerant). */
bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols()
        && (a.size() == 0
            || std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)) == 0);
}

// ------------------------------------------------------------ plumbing

TEST(SimdDispatchTest, TierNameParseRoundTrip)
{
    for (SimdTier t :
         {SimdTier::Scalar, SimdTier::Exact, SimdTier::Fast}) {
        const auto parsed = parseSimdTier(simdTierName(t));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, t);
    }
    EXPECT_FALSE(parseSimdTier("").has_value());
    EXPECT_FALSE(parseSimdTier("vector").has_value());
    EXPECT_FALSE(parseSimdTier("Exact").has_value());
}

TEST(SimdDispatchTest, LevelNameParseRoundTrip)
{
    for (SimdLevel l : {SimdLevel::Scalar, SimdLevel::Neon,
                        SimdLevel::Avx2, SimdLevel::Avx512}) {
        const auto parsed = parseSimdLevel(simdLevelName(l));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, l);
    }
    // "auto", empty and junk all mean "no cap".
    EXPECT_FALSE(parseSimdLevel("auto").has_value());
    EXPECT_FALSE(parseSimdLevel("").has_value());
    EXPECT_FALSE(parseSimdLevel("sse9").has_value());
}

TEST(SimdDispatchTest, TierSelectsTable)
{
    // Scalar pins the reference table; Exact and Fast share the
    // active one (the tier difference is which entries callers may
    // use, not which table they get).
    EXPECT_EQ(&simdKernels(SimdTier::Scalar), &simd::scalarTable());
    EXPECT_EQ(&simdKernels(SimdTier::Exact), &activeKernels());
    EXPECT_EQ(&simdKernels(SimdTier::Fast), &activeKernels());
}

TEST(SimdDispatchTest, DefaultTierRoundTrip)
{
    const SimdTier before = defaultSimdTier();
    setDefaultSimdTier(SimdTier::Fast);
    EXPECT_EQ(defaultSimdTier(), SimdTier::Fast);
    setDefaultSimdTier(before);
    EXPECT_EQ(defaultSimdTier(), before);
}

TEST(SimdDispatchTest, TablesArePopulated)
{
    std::vector<const SimdKernels *> all = vectorTables();
    all.push_back(&simd::scalarTable());
    all.push_back(&activeKernels());
    for (const SimdKernels *t : all) {
        EXPECT_NE(t->name, nullptr);
        EXPECT_NE(t->axpyF32, nullptr);
        EXPECT_NE(t->axpy4F32, nullptr);
        EXPECT_NE(t->dotF32, nullptr);
        EXPECT_NE(t->dotI32, nullptr);
        EXPECT_NE(t->ldDotSingle, nullptr);
        EXPECT_NE(t->ldDotTwoStep, nullptr);
        EXPECT_NE(t->absGreaterMask64, nullptr);
        EXPECT_NE(t->cmpGeMask64, nullptr);
        EXPECT_NE(t->popcountWords, nullptr);
        EXPECT_NE(t->andPopcountWords, nullptr);
        EXPECT_NE(t->orWords, nullptr);
    }
}

// ---------------------------------------------- float kernels (Exact)

TEST(SimdKernelTest, AxpyBitIdenticalToScalar)
{
    Rng rng(11);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : kLengths) {
            const std::vector<float> x = adversarialFloats(n, rng);
            for (float a : {1.5f, 0.0f, -0.0f, kInf, kNan}) {
                std::vector<float> ref = adversarialFloats(n, rng);
                std::vector<float> got = ref;
                simd::axpyF32Scalar(ref.data(), x.data(), a, n);
                table->axpyF32(got.data(), x.data(), a, n);
                EXPECT_TRUE(bitsEqual(ref, got))
                    << table->name << " n=" << n << " a=" << a;
            }
        }
    }
}

TEST(SimdKernelTest, Axpy4BitIdenticalToScalar)
{
    Rng rng(12);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : kLengths) {
            const std::vector<float> x0 = adversarialFloats(n, rng);
            const std::vector<float> x1 = adversarialFloats(n, rng);
            const std::vector<float> x2 = adversarialFloats(n, rng);
            const std::vector<float> x3 = adversarialFloats(n, rng);
            std::vector<float> ref = adversarialFloats(n, rng);
            std::vector<float> got = ref;
            simd::axpy4F32Scalar(ref.data(), x0.data(), x1.data(),
                                 x2.data(), x3.data(), 0.7f, -1.3f,
                                 kInf, 0.01f, n);
            table->axpy4F32(got.data(), x0.data(), x1.data(),
                            x2.data(), x3.data(), 0.7f, -1.3f, kInf,
                            0.01f, n);
            EXPECT_TRUE(bitsEqual(ref, got))
                << table->name << " n=" << n;
        }
    }
}

TEST(SimdKernelTest, DotF32WithinTolerance)
{
    // dotF32 is the Fast tier's reassociated reduction: not
    // bit-identical to the serial chain, but within reassociation
    // rounding of it on finite inputs.
    Rng rng(13);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : kLengths) {
            std::vector<float> a(n), b(n);
            double magnitude = 0.0;
            for (Index i = 0; i < n; ++i) {
                a[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
                b[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
                magnitude += std::abs(static_cast<double>(a[i])
                                      * static_cast<double>(b[i]));
            }
            const float ref = simd::dotF32Scalar(a.data(), b.data(), n);
            const float got = table->dotF32(a.data(), b.data(), n);
            EXPECT_NEAR(ref, got, 1e-5 * (1.0 + magnitude))
                << table->name << " n=" << n;
        }
    }
}

// -------------------------------------------------- integer reductions

TEST(SimdKernelTest, DotI32Exact)
{
    Rng rng(14);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : kLengths) {
            std::vector<i32> a(n), b(n);
            for (Index i = 0; i < n; ++i) {
                // Full INT12 range plus the extremes' products.
                a[i] = static_cast<i32>(rng.uniform() * 4095.0) - 2047;
                b[i] = static_cast<i32>(rng.uniform() * 4095.0) - 2047;
            }
            EXPECT_EQ(simd::dotI32Scalar(a.data(), b.data(), n),
                      table->dotI32(a.data(), b.data(), n))
                << table->name << " n=" << n;
        }
    }
}

TEST(SimdKernelTest, LdDotExhaustiveInt12)
{
    // Every INT12 operand pair, both LOD depths: the vector lane math
    // (spread-bits magnitude, sign folding) must reproduce ldProduct
    // exactly, and the scalar kernel must equal the per-element sum.
    const i32 lo = -2047, hi = 2047;
    std::vector<i32> all;
    for (i32 v = lo; v <= hi; ++v)
        all.push_back(v);
    const Index n = all.size();
    const std::vector<const SimdKernels *> tables = vectorTables();

    std::vector<i32> bvec(n);
    // Stride 13 keeps the full-range sweep but trims runtime; the
    // tails (|v| near 0 and 2047) are always included.
    for (i32 b = lo; b <= hi; b += 13) {
        std::fill(bvec.begin(), bvec.end(), b);
        i64 want_single = 0, want_two = 0;
        for (i32 a : all) {
            want_single += ldProduct(a, b, LodMode::Single);
            want_two += ldProduct(a, b, LodMode::TwoStep);
        }
        ASSERT_EQ(want_single,
                  simd::ldDotSingleScalar(all.data(), bvec.data(), n))
            << "b=" << b;
        ASSERT_EQ(want_two,
                  simd::ldDotTwoStepScalar(all.data(), bvec.data(), n))
            << "b=" << b;
        for (const SimdKernels *table : tables) {
            ASSERT_EQ(want_single,
                      table->ldDotSingle(all.data(), bvec.data(), n))
                << table->name << " b=" << b;
            ASSERT_EQ(want_two,
                      table->ldDotTwoStep(all.data(), bvec.data(), n))
                << table->name << " b=" << b;
        }
    }
}

TEST(SimdKernelTest, LdDotRaggedTails)
{
    Rng rng(15);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : kLengths) {
            std::vector<i32> a(n), b(n);
            for (Index i = 0; i < n; ++i) {
                a[i] = static_cast<i32>(rng.uniform() * 4095.0) - 2047;
                b[i] = static_cast<i32>(rng.uniform() * 4095.0) - 2047;
            }
            EXPECT_EQ(simd::ldDotSingleScalar(a.data(), b.data(), n),
                      table->ldDotSingle(a.data(), b.data(), n))
                << table->name << " n=" << n;
            EXPECT_EQ(simd::ldDotTwoStepScalar(a.data(), b.data(), n),
                      table->ldDotTwoStep(a.data(), b.data(), n))
                << table->name << " n=" << n;
        }
    }
}

// -------------------------------------------------------- mask kernels

TEST(SimdKernelTest, AbsGreaterMaskMatchesScalar)
{
    Rng rng(16);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n = 1; n <= 64; ++n) {
            std::vector<float> x = adversarialFloats(n, rng);
            // Plant exact-theta values: |x| > theta must be strict.
            const float theta = 0.75f;
            if (n > 2) {
                x[0] = theta;
                x[1] = -theta;
            }
            u64 want = 0;
            for (Index i = 0; i < n; ++i)
                if (std::abs(x[i]) > theta)
                    want |= u64{1} << i;
            EXPECT_EQ(want,
                      simd::absGreaterMask64Scalar(x.data(), theta, n))
                << "n=" << n;
            EXPECT_EQ(want, table->absGreaterMask64(x.data(), theta, n))
                << table->name << " n=" << n;
        }
    }
}

TEST(SimdKernelTest, CmpGeMaskMatchesScalar)
{
    Rng rng(17);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n = 1; n <= 64; ++n) {
            std::vector<float> x = adversarialFloats(n, rng);
            const float threshold = -0.25f;
            if (n > 2) {
                x[0] = threshold; // ties keep (>=)
                x[1] = kNan;      // ordered compare: NaN drops
            }
            u64 want = 0;
            for (Index i = 0; i < n; ++i)
                if (x[i] >= threshold)
                    want |= u64{1} << i;
            EXPECT_EQ(want,
                      simd::cmpGeMask64Scalar(x.data(), threshold, n))
                << "n=" << n;
            EXPECT_EQ(want, table->cmpGeMask64(x.data(), threshold, n))
                << table->name << " n=" << n;
        }
    }
}

TEST(SimdKernelTest, MaskKernelsIgnoreBitsPastN)
{
    // A payload past the tail that would match must not leak into
    // the result word.
    std::vector<float> x(64, 1000.0f);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : {Index{1}, Index{7}, Index{31}, Index{63}}) {
            const u64 want = n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
            EXPECT_EQ(want, table->absGreaterMask64(x.data(), 0.5f, n))
                << table->name << " n=" << n;
            EXPECT_EQ(want, table->cmpGeMask64(x.data(), 0.5f, n))
                << table->name << " n=" << n;
        }
    }
}

// -------------------------------------------------------- word kernels

TEST(SimdKernelTest, WordKernelsMatchScalar)
{
    Rng rng(18);
    for (const SimdKernels *table : vectorTables()) {
        for (Index n : {Index{0}, Index{1}, Index{2}, Index{3},
                        Index{7}, Index{8}, Index{9}, Index{33}}) {
            std::vector<u64> a(n), b(n);
            for (Index i = 0; i < n; ++i) {
                a[i] = rng.next();
                b[i] = rng.next();
            }
            if (n > 1) {
                a[0] = 0;
                b[n - 1] = ~u64{0};
            }
            EXPECT_EQ(simd::popcountWordsScalar(a.data(), n),
                      table->popcountWords(a.data(), n))
                << table->name << " n=" << n;
            EXPECT_EQ(
                simd::andPopcountWordsScalar(a.data(), b.data(), n),
                table->andPopcountWords(a.data(), b.data(), n))
                << table->name << " n=" << n;
            std::vector<u64> ref = a, got = a;
            simd::orWordsScalar(ref.data(), b.data(), n);
            table->orWords(got.data(), b.data(), n);
            EXPECT_EQ(ref, got) << table->name << " n=" << n;
        }
    }
}

// ------------------------------------------------- bitmask word-level

/** Shapes whose rows land before/on/after every word boundary. */
const Index kRaggedCols[] = {63, 64, 65};

TEST(BitmaskWordApiTest, WordsSpanAndPaddingInvariant)
{
    Rng rng(19);
    for (Index cols : kRaggedCols) {
        Bitmask2D m(3, cols);
        EXPECT_EQ(m.wordCount(), (3 * cols + 63) / 64);
        EXPECT_EQ(m.words().size(), m.wordCount());
        for (Index r = 0; r < 3; ++r)
            for (Index c = 0; c < cols; ++c)
                m.set(r, c, rng.uniform() < 0.5);
        // Bits past rows*cols in the final word stay zero, so
        // word-level consumers never see garbage.
        const Index used = 3 * cols;
        if (used % 64 != 0) {
            const u64 tail = m.words()[m.wordCount() - 1];
            EXPECT_EQ(tail >> (used % 64), 0u) << "cols=" << cols;
        }
    }
}

TEST(BitmaskWordApiTest, CountOnesRaggedTails)
{
    Rng rng(20);
    for (Index cols : kRaggedCols) {
        Bitmask2D m(5, cols);
        u64 want = 0;
        for (Index r = 0; r < 5; ++r)
            for (Index c = 0; c < cols; ++c) {
                const bool v = rng.uniform() < 0.4;
                m.set(r, c, v);
                want += v;
            }
        EXPECT_EQ(m.countOnes(), want) << "cols=" << cols;
        for (Index r = 0; r < 5; ++r) {
            u64 row_want = 0;
            for (Index c = 0; c < cols; ++c)
                row_want += m.get(r, c);
            EXPECT_EQ(m.rowOnes(r), row_want)
                << "cols=" << cols << " r=" << r;
        }
    }
}

TEST(BitmaskWordApiTest, AndPopcountRaggedTails)
{
    Rng rng(21);
    for (Index cols : kRaggedCols) {
        Bitmask2D a(4, cols), b(4, cols);
        u64 want = 0;
        for (Index r = 0; r < 4; ++r)
            for (Index c = 0; c < cols; ++c) {
                const bool av = rng.uniform() < 0.5;
                const bool bv = rng.uniform() < 0.5;
                a.set(r, c, av);
                b.set(r, c, bv);
                want += av && bv;
            }
        EXPECT_EQ(a.andPopcount(b), want) << "cols=" << cols;
        EXPECT_EQ(b.andPopcount(a), want) << "cols=" << cols;
    }
}

TEST(BitmaskWordApiTest, NonEmptyColumnCount)
{
    Rng rng(28);
    for (Index cols : kRaggedCols) {
        Bitmask2D m(5, cols);
        for (Index r = 0; r < 5; ++r)
            for (Index c = 0; c < cols; ++c)
                m.set(r, c, rng.uniform() < 0.1);
        Index want = 0;
        for (Index c = 0; c < cols; ++c)
            want += m.columnEmpty(c) ? 0 : 1;
        EXPECT_EQ(m.nonEmptyColumnCount(), want) << "cols=" << cols;
        EXPECT_EQ(Bitmask2D(5, cols).nonEmptyColumnCount(), 0u);
    }
}

TEST(BitmaskWordApiTest, ForEachSetBitEmptyAndFull)
{
    for (Index cols : kRaggedCols) {
        Bitmask2D empty(2, cols);
        empty.forEachSetBit(
            [&](Index, Index) { FAIL() << "empty mask fired"; });

        Bitmask2D full(2, cols);
        for (Index r = 0; r < 2; ++r)
            for (Index c = 0; c < cols; ++c)
                full.set(r, c, true);
        Index count = 0;
        Index prev_bit = 0;
        full.forEachSetBit([&](Index r, Index c) {
            const Index bit = r * cols + c;
            EXPECT_TRUE(count == 0 || bit > prev_bit); // row-major
            prev_bit = bit;
            ++count;
        });
        EXPECT_EQ(count, 2 * cols) << "cols=" << cols;
    }
}

TEST(BitmaskWordApiTest, ForEachSetBitMatchesGet)
{
    Rng rng(22);
    for (Index cols : kRaggedCols) {
        Bitmask2D m(5, cols);
        for (Index r = 0; r < 5; ++r)
            for (Index c = 0; c < cols; ++c)
                m.set(r, c, rng.uniform() < 0.3);
        Bitmask2D rebuilt(5, cols);
        m.forEachSetBit([&](Index r, Index c) {
            ASSERT_LT(r, m.rows());
            ASSERT_LT(c, m.cols());
            EXPECT_FALSE(rebuilt.get(r, c)); // no duplicates
            rebuilt.set(r, c, true);
        });
        EXPECT_EQ(m, rebuilt) << "cols=" << cols;
    }
}

TEST(BitmaskWordApiTest, ForEachSetBitInRowRaggedRows)
{
    Rng rng(23);
    // 63/65-column rows start mid-word from row 1 on; every row of
    // each shape must see exactly its own bits, ascending.
    for (Index cols : kRaggedCols) {
        Bitmask2D m(5, cols);
        for (Index r = 0; r < 5; ++r)
            for (Index c = 0; c < cols; ++c)
                m.set(r, c, rng.uniform() < 0.35);
        for (Index r = 0; r < 5; ++r) {
            std::vector<Index> want;
            for (Index c = 0; c < cols; ++c)
                if (m.get(r, c))
                    want.push_back(c);
            std::vector<Index> got;
            m.forEachSetBitInRow(r, [&](Index c) { got.push_back(c); });
            EXPECT_EQ(want, got) << "cols=" << cols << " r=" << r;
        }
    }
}

TEST(BitmaskWordApiTest, WriteRowBitsStraddlesWords)
{
    for (Index cols : kRaggedCols) {
        for (Index r = 0; r < 3; ++r) {
            for (Index c0 : {Index{0}, Index{1}, Index{60}}) {
                for (Index nb : {Index{1}, Index{5}, Index{3}}) {
                    if (c0 + nb > cols)
                        continue;
                    Bitmask2D m(3, cols);
                    // Pre-set neighbours to catch clobbering.
                    if (c0 > 0)
                        m.set(r, c0 - 1, true);
                    if (c0 + nb < cols)
                        m.set(r, c0 + nb, true);
                    const u64 bits = 0b10110101;
                    m.writeRowBits(r, c0, bits, nb);
                    for (Index c = 0; c < cols; ++c) {
                        bool want;
                        if (c >= c0 && c < c0 + nb)
                            want = (bits >> (c - c0)) & 1;
                        else
                            want = (c + 1 == c0)
                                || (c == c0 + nb && c < cols);
                        EXPECT_EQ(m.get(r, c), want)
                            << "cols=" << cols << " r=" << r
                            << " c0=" << c0 << " nb=" << nb
                            << " c=" << c;
                    }
                }
            }
        }
    }
}

TEST(BitmaskWordApiTest, WriteRowBitsOverwrites)
{
    // writeRowBits overwrites the range: previously-set bits inside
    // it whose new value is 0 must clear.
    Bitmask2D m(2, 65);
    for (Index c = 0; c < 65; ++c)
        m.set(1, c, true);
    m.writeRowBits(1, 60, 0, 5);
    for (Index c = 0; c < 65; ++c)
        EXPECT_EQ(m.get(1, c), c < 60) << "c=" << c;
}

TEST(BitmaskWordApiTest, FullWidthWriteRowBits)
{
    Bitmask2D m(2, 64);
    m.writeRowBits(0, 0, ~u64{0}, 64);
    EXPECT_EQ(m.rowOnes(0), 64u);
    EXPECT_EQ(m.rowOnes(1), 0u);
    m.writeRowBits(0, 0, 0, 64);
    EXPECT_EQ(m.countOnes(), 0u);
}

// --------------------------------------------------- tiers end to end

TEST(SimdTierTest, BlockedGemmExactBitIdenticalAcrossTiers)
{
    Rng rng(24);
    const struct
    {
        Index m, k, n;
    } shapes[] = {{1, 1, 1}, {3, 7, 13}, {17, 19, 23}, {33, 65, 63}};
    for (const auto &s : shapes) {
        Matrix a(s.m, s.k), b(s.k, s.n), bt(s.n, s.k);
        a.fillUniform(rng, -2.0f, 2.0f);
        b.fillUniform(rng, -2.0f, 2.0f);
        bt.fillUniform(rng, -2.0f, 2.0f);
        if (s.m > 2 && s.k > 2) {
            a(0, 0) = kNan;
            a(1, 1) = kInf;
            a(2, 0) = -0.0f;
        }
        const Matrix scalar =
            matmulWith(a, b, GemmBackend::Blocked, SimdTier::Scalar);
        const Matrix exact =
            matmulWith(a, b, GemmBackend::Blocked, SimdTier::Exact);
        EXPECT_TRUE(bitIdentical(scalar, exact))
            << s.m << "x" << s.k << "x" << s.n;
        const Matrix scalar_t = matmulTransposedWith(
            a, bt, GemmBackend::Blocked, SimdTier::Scalar);
        const Matrix exact_t = matmulTransposedWith(
            a, bt, GemmBackend::Blocked, SimdTier::Exact);
        EXPECT_TRUE(bitIdentical(scalar_t, exact_t))
            << s.m << "x" << s.k << "x" << s.n << " transposed";
    }
}

TEST(SimdTierTest, QuantGemmIdenticalAcrossTiers)
{
    Rng rng(25);
    Matrix a(9, 31), b(31, 17);
    a.fillUniform(rng, -1.0f, 1.0f);
    b.fillUniform(rng, -1.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    const Matrix scalar =
        matmulQuantWith(qa, qb, GemmBackend::Blocked, SimdTier::Scalar);
    const Matrix exact =
        matmulQuantWith(qa, qb, GemmBackend::Blocked, SimdTier::Exact);
    // Integer accumulation: every tier is exact, so even Fast could
    // not diverge here — assert the strongest form.
    EXPECT_TRUE(bitIdentical(scalar, exact));
}

TEST(SimdTierTest, LdMatmulIdenticalAcrossTiers)
{
    Rng rng(26);
    Matrix a(7, 29), b(29, 11);
    a.fillUniform(rng, -1.0f, 1.0f);
    b.fillUniform(rng, -1.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    for (LodMode mode : {LodMode::Single, LodMode::TwoStep}) {
        const Matrix scalar = ldMatmul(qa, qb, mode, SimdTier::Scalar);
        const Matrix exact = ldMatmul(qa, qb, mode, SimdTier::Exact);
        EXPECT_TRUE(bitIdentical(scalar, exact));
    }
}

TEST(SimdTierTest, FastTransposedGemmWithinTolerance)
{
    Rng rng(27);
    Matrix a(13, 130), b(17, 130);
    a.fillUniform(rng, -1.0f, 1.0f);
    b.fillUniform(rng, -1.0f, 1.0f);
    const Matrix golden = matmulTransposedWith(
        a, b, GemmBackend::Reference, SimdTier::Scalar);
    const Matrix fast = matmulTransposedWith(a, b, GemmBackend::Blocked,
                                             SimdTier::Fast);
    ASSERT_EQ(golden.rows(), fast.rows());
    ASSERT_EQ(golden.cols(), fast.cols());
    for (Index i = 0; i < golden.size(); ++i)
        EXPECT_NEAR(golden.data()[i], fast.data()[i], 1e-4)
            << "i=" << i;
}

} // namespace
} // namespace exion
