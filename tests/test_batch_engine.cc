/**
 * @file
 * Tests for the batched serving engine: batched-vs-sequential
 * bit-identity under threading and priority scheduling, per-request
 * state isolation, mixed request scheduling, async submit/complete
 * delivery (tickets, callback, result queue), priority-inversion
 * regression and ConMerge accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "exion/serve/batch_engine.h"

namespace exion
{
namespace
{

ModelConfig
tinyConfig()
{
    return makeTinyConfig(/*tokens=*/8, /*d_model=*/16, /*n_blocks=*/2,
                          /*iterations=*/6);
}

/** A mixed batch over one tiny model: modes, seeds, quantisation. */
std::vector<ServeRequest>
mixedBatch(Benchmark b, int n)
{
    std::vector<ServeRequest> batch;
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::FfnReuseOnly,
                              ExecMode::EpOnly, ExecMode::Exion};
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = b;
        req.mode = modes[i % 4];
        req.quantize = i % 3 == 0;
        req.noiseSeed = 100 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

void
expectBitIdentical(const std::vector<RequestResult> &a,
                   const std::vector<RequestResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (Index i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        ASSERT_EQ(a[i].output.rows(), b[i].output.rows());
        ASSERT_EQ(a[i].output.cols(), b[i].output.cols());
        for (Index e = 0; e < a[i].output.size(); ++e)
            EXPECT_EQ(a[i].output.data()[e], b[i].output.data()[e])
                << "request " << i << " element " << e;
        EXPECT_EQ(a[i].stats.totalExecuted(), b[i].stats.totalExecuted());
        EXPECT_EQ(a[i].stats.totalDense(), b[i].stats.totalDense());
    }
}

TEST(BatchEngine, BatchedMatchesSequentialBitExactly)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 12);
    const auto sequential = engine.runSequential(batch);
    const auto batched = engine.runBatch(batch);
    expectBitIdentical(sequential, batched);
}

TEST(BatchEngine, RepeatedBatchesAreDeterministic)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 3;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 8);
    expectBitIdentical(engine.runBatch(batch), engine.runBatch(batch));
}

TEST(BatchEngine, WorkerCountDoesNotChangeResults)
{
    const ModelConfig cfg = tinyConfig();
    const auto batch = mixedBatch(cfg.benchmark, 8);

    BatchEngine::Options one;
    one.workers = 1;
    BatchEngine engine1(one);
    engine1.addModel(cfg);

    BatchEngine::Options many;
    many.workers = 8;
    BatchEngine engine8(many);
    engine8.addModel(cfg);

    expectBitIdentical(engine1.runBatch(batch), engine8.runBatch(batch));
}

TEST(BatchEngine, PrioritiesDoNotChangeResultsAtAnyWorkerCount)
{
    // The priority queue reorders execution, never numerics: a batch
    // with adversarially mixed classes and deadlines must stay
    // bit-identical to its sequential run at 1, 2 and 8 workers.
    const ModelConfig cfg = tinyConfig();
    auto batch = mixedBatch(cfg.benchmark, 12);
    const Priority classes[] = {Priority::Low, Priority::Critical,
                                Priority::Normal, Priority::High};
    for (Index i = 0; i < batch.size(); ++i) {
        batch[i].priority = classes[i % 4];
        batch[i].deadlineSeconds =
            i % 3 == 0 ? 0.0 : 0.5 * static_cast<double>(i);
    }

    std::vector<RequestResult> reference;
    for (int workers : {1, 2, 8}) {
        BatchEngine::Options opts;
        opts.workers = workers;
        BatchEngine engine(opts);
        engine.addModel(cfg);
        if (reference.empty())
            reference = engine.runSequential(batch);
        expectBitIdentical(reference, engine.runBatch(batch));
    }
}

TEST(BatchEngine, MatchesDirectPipelineRun)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Dense;
    req.noiseSeed = 42;
    const RequestResult result = engine.submit(req).get();

    DiffusionPipeline pipe(cfg);
    DenseExecutor exec;
    const Matrix expected = pipe.run(exec, /*noise_seed=*/42);
    ASSERT_EQ(result.output.size(), expected.size());
    for (Index e = 0; e < expected.size(); ++e)
        EXPECT_EQ(result.output.data()[e], expected.data()[e]);
    EXPECT_EQ(result.stats.totalExecuted(),
              exec.stats().totalExecuted());
}

TEST(BatchEngine, SparseRequestsKeepIndependentReuseState)
{
    // Two concurrent Exion requests with different seeds must match
    // their isolated single-stream runs: shared FFN-Reuse state would
    // corrupt masks and partial sums across streams.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::vector<ServeRequest> batch(2);
    batch[0].benchmark = cfg.benchmark;
    batch[0].mode = ExecMode::Exion;
    batch[0].noiseSeed = 1;
    batch[1] = batch[0];
    batch[1].id = 1;
    batch[1].noiseSeed = 2;

    const auto results = engine.runBatch(batch);
    for (int i = 0; i < 2; ++i) {
        DiffusionPipeline pipe(cfg);
        SparseExecutor exec(SparseExecutor::fromConfig(
            cfg, /*use_ffn_reuse=*/true, /*use_ep=*/true,
            /*quantize=*/false));
        const Matrix expected =
            pipe.run(exec, /*noise_seed=*/1 + static_cast<u64>(i));
        for (Index e = 0; e < expected.size(); ++e)
            EXPECT_EQ(results[i].output.data()[e], expected.data()[e])
                << "request " << i << " element " << e;
    }
}

TEST(BatchEngine, TracksConMergeStatsPerRequest)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Exion;
    req.trackConMerge = true;
    const RequestResult tracked = engine.submit(req).get();
    // 6 iterations x 2 blocks of masks flow through ConMerge; the
    // dense-interval pattern fires onFfnMask every iteration.
    EXPECT_GT(tracked.conmerge.groups, 0u);
    EXPECT_GT(tracked.conmerge.matrixColumns, 0u);

    req.trackConMerge = false;
    const RequestResult untracked = engine.submit(req).get();
    EXPECT_EQ(untracked.conmerge.groups, 0u);

    // Accounting must not perturb numerics.
    for (Index e = 0; e < tracked.output.size(); ++e)
        EXPECT_EQ(tracked.output.data()[e], untracked.output.data()[e]);
}

TEST(BatchEngine, ResultsKeepRequestOrderAndIds)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    auto batch = mixedBatch(cfg.benchmark, 10);
    for (Index i = 0; i < batch.size(); ++i)
        batch[i].id = 1000 + static_cast<u64>(i);
    const auto results = engine.runBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (Index i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].id, 1000 + static_cast<u64>(i));
}

TEST(BatchEngine, ServesMultipleModels)
{
    const ModelConfig tiny = tinyConfig();
    ModelConfig other = makeTinyConfig(/*tokens=*/4, /*d_model=*/8,
                                       /*n_blocks=*/1, /*iterations=*/4);
    other.benchmark = Benchmark::DiT;

    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(tiny);
    engine.addModel(other);

    std::vector<ServeRequest> batch(2);
    batch[0].benchmark = tiny.benchmark;
    batch[1].benchmark = other.benchmark;
    batch[1].id = 1;
    const auto results = engine.runBatch(batch);
    EXPECT_EQ(results[0].output.rows(), tiny.latentTokens);
    EXPECT_EQ(results[1].output.rows(), other.latentTokens);
}

TEST(BatchEngine, TicketSurface)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    Ticket invalid;
    EXPECT_FALSE(invalid.valid());

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 77;
    const Ticket a = engine.submit(req);
    const Ticket b = engine.submit(req);
    EXPECT_TRUE(a.valid());
    EXPECT_LT(a.id(), b.id());

    a.wait();
    EXPECT_TRUE(a.ready());
    // get() copies; the ticket stays consumable.
    const RequestResult first = a.get();
    const RequestResult again = a.get();
    EXPECT_EQ(first.id, 77u);
    EXPECT_TRUE(first.ok());
    for (Index e = 0; e < first.output.size(); ++e)
        EXPECT_EQ(first.output.data()[e], again.output.data()[e]);
    b.wait();
    engine.waitIdle();
    EXPECT_EQ(engine.inFlight(), 0u);
}

TEST(BatchEngine, PriorityInversionRegression)
{
    // A burst of low-priority requests submitted first must not delay
    // a high-priority request's completion: with one worker and the
    // scheduler paused while the burst queues, the high-priority
    // request must be the first completion delivered.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    engine.pause();
    std::vector<Ticket> tickets;
    for (int i = 0; i < 6; ++i) {
        ServeRequest low;
        low.benchmark = cfg.benchmark;
        low.id = static_cast<u64>(i);
        low.priority = Priority::Low;
        low.noiseSeed = 10 + static_cast<u64>(i);
        tickets.push_back(engine.submit(low));
    }
    ServeRequest high;
    high.benchmark = cfg.benchmark;
    high.id = 999;
    high.priority = Priority::High;
    tickets.push_back(engine.submit(high));
    engine.resume();

    engine.waitIdle();
    ASSERT_EQ(completion_order.size(), 7u);
    EXPECT_EQ(completion_order.front(), 999u)
        << "high-priority request completed behind queued "
           "low-priority work";
}

TEST(BatchEngine, EarlierDeadlineRunsFirstWithinClass)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    // Same class; deadlines 30 s, 10 s, 20 s, none — EDF order is
    // 10 s, 20 s, 30 s, then the deadline-free request.
    const double deadlines[] = {30.0, 10.0, 20.0, 0.0};
    engine.pause();
    for (int i = 0; i < 4; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        req.deadlineSeconds = deadlines[i];
        engine.submit(req);
    }
    engine.resume();
    engine.waitIdle();

    const std::vector<u64> expected = {1, 2, 0, 3};
    EXPECT_EQ(completion_order, expected);
}

TEST(BatchEngine, CallbackAndQueueDeliveryAreEquivalent)
{
    // Every submit() delivers each completion to both the callback
    // and the result queue; the two views must be bit-identical.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 3;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex cb_mutex;
    std::vector<RequestResult> via_callback;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(cb_mutex);
        via_callback.push_back(r);
    });

    const auto batch = mixedBatch(cfg.benchmark, 9);
    for (const ServeRequest &req : batch)
        engine.submit(req);

    std::vector<RequestResult> via_queue;
    for (Index i = 0; i < batch.size(); ++i) {
        auto r = engine.results().pop();
        ASSERT_TRUE(r.has_value());
        via_queue.push_back(std::move(*r));
    }
    EXPECT_FALSE(engine.results().tryPop().has_value());
    engine.waitIdle();

    const auto by_id = [](const RequestResult &a,
                          const RequestResult &b) { return a.id < b.id; };
    std::sort(via_callback.begin(), via_callback.end(), by_id);
    std::sort(via_queue.begin(), via_queue.end(), by_id);
    expectBitIdentical(via_callback, via_queue);
    expectBitIdentical(via_queue, engine.runSequential(batch));
}

TEST(BatchEngine, ThrowingCallbackDoesNotBreakDelivery)
{
    // Regression: an exception escaping the completion callback must
    // not leave the Ticket promise unset (deadlocking get()) or the
    // in-flight counter stuck nonzero.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);
    engine.setOnComplete([](const RequestResult &) {
        throw std::runtime_error("misbehaving sink");
    });

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 3;
    const Ticket ticket = engine.submit(req);
    const RequestResult result = ticket.get();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.id, 3u);
    engine.waitIdle();
    EXPECT_EQ(engine.inFlight(), 0u);
    // The queue still got its copy despite the callback throwing.
    EXPECT_TRUE(engine.results().tryPop().has_value());
}

TEST(BatchEngine, QueueResultsOptionDisablesQueueDelivery)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    opts.queueResults = false;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    EXPECT_TRUE(engine.submit(req).get().ok());
    engine.waitIdle();
    EXPECT_EQ(engine.results().size(), 0u);
}

TEST(BatchEngine, ExtremeDeadlinesAreSafe)
{
    // Huge / infinite / NaN deadlines must not overflow the priority
    // encoding (UBSan-checked in CI); they clamp or count as "none"
    // and the requests still complete correctly.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const double deadlines[] = {
        1e18, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(), -5.0, 1e-9};
    std::vector<Ticket> tickets;
    for (Index i = 0; i < 5; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = i;
        req.deadlineSeconds = deadlines[i];
        tickets.push_back(engine.submit(req));
    }
    for (const Ticket &t : tickets)
        EXPECT_TRUE(t.get().ok());
}

TEST(BatchEngine, RunBatchDoesNotFeedResultQueue)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.runBatch(mixedBatch(cfg.benchmark, 4));
    EXPECT_EQ(engine.results().size(), 0u);
}

TEST(BatchEngine, ShutdownDrainsPendingAndClosesQueue)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    std::vector<Ticket> tickets;
    for (int i = 0; i < 5; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        tickets.push_back(engine.submit(req));
    }

    // Graceful: every pending request still runs to completion.
    engine.shutdown();
    for (const Ticket &t : tickets) {
        ASSERT_TRUE(t.ready());
        EXPECT_TRUE(t.get().ok());
    }

    // The queue still serves the drained results, then reports
    // closure instead of blocking forever.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(engine.results().pop().has_value());
    EXPECT_FALSE(engine.results().pop().has_value());
    EXPECT_TRUE(engine.results().closed());

    ServeRequest late;
    late.benchmark = cfg.benchmark;
    EXPECT_THROW(engine.submit(late), ThreadPoolStopped);
}

TEST(ServeNames, PriorityAndModeNames)
{
    EXPECT_EQ(priorityName(Priority::Low), "low");
    EXPECT_EQ(priorityName(Priority::Normal), "normal");
    EXPECT_EQ(priorityName(Priority::High), "high");
    EXPECT_EQ(priorityName(Priority::Critical), "critical");
    EXPECT_EQ(execModeName(ExecMode::Dense), "dense");
    EXPECT_EQ(execModeName(ExecMode::Exion), "exion");
}

TEST(ExecContext, BindingIsolatesStatsAcrossContexts)
{
    DenseExecutor exec;
    ExecContext a, b;

    exec.bindContext(a);
    exec.beginIteration(3);
    exec.stats().qkvOpsDense = 10;

    exec.bindContext(b);
    EXPECT_EQ(exec.ctx().iteration, 0);
    EXPECT_EQ(exec.stats().qkvOpsDense, 0u);

    exec.unbindContext();
    EXPECT_EQ(a.iteration, 3);
    EXPECT_EQ(a.stats.qkvOpsDense, 10u);
}

} // namespace
} // namespace exion
