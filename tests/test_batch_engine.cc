/**
 * @file
 * Tests for the batched serving engine: batched-vs-sequential
 * bit-identity under threading, per-request state isolation, mixed
 * request scheduling and ConMerge accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exion/serve/batch_engine.h"

namespace exion
{
namespace
{

ModelConfig
tinyConfig()
{
    return makeTinyConfig(/*tokens=*/8, /*d_model=*/16, /*n_blocks=*/2,
                          /*iterations=*/6);
}

/** A mixed batch over one tiny model: modes, seeds, quantisation. */
std::vector<ServeRequest>
mixedBatch(Benchmark b, int n)
{
    std::vector<ServeRequest> batch;
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::FfnReuseOnly,
                              ExecMode::EpOnly, ExecMode::Exion};
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = b;
        req.mode = modes[i % 4];
        req.quantize = i % 3 == 0;
        req.noiseSeed = 100 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

void
expectBitIdentical(const std::vector<RequestResult> &a,
                   const std::vector<RequestResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (Index i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        ASSERT_EQ(a[i].output.rows(), b[i].output.rows());
        ASSERT_EQ(a[i].output.cols(), b[i].output.cols());
        for (Index e = 0; e < a[i].output.size(); ++e)
            EXPECT_EQ(a[i].output.data()[e], b[i].output.data()[e])
                << "request " << i << " element " << e;
        EXPECT_EQ(a[i].stats.totalExecuted(), b[i].stats.totalExecuted());
        EXPECT_EQ(a[i].stats.totalDense(), b[i].stats.totalDense());
    }
}

TEST(BatchEngine, BatchedMatchesSequentialBitExactly)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 12);
    const auto sequential = engine.runSequential(batch);
    const auto batched = engine.runBatch(batch);
    expectBitIdentical(sequential, batched);
}

TEST(BatchEngine, RepeatedBatchesAreDeterministic)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 3;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 8);
    expectBitIdentical(engine.runBatch(batch), engine.runBatch(batch));
}

TEST(BatchEngine, WorkerCountDoesNotChangeResults)
{
    const ModelConfig cfg = tinyConfig();
    const auto batch = mixedBatch(cfg.benchmark, 8);

    BatchEngine::Options one;
    one.workers = 1;
    BatchEngine engine1(one);
    engine1.addModel(cfg);

    BatchEngine::Options many;
    many.workers = 8;
    BatchEngine engine8(many);
    engine8.addModel(cfg);

    expectBitIdentical(engine1.runBatch(batch), engine8.runBatch(batch));
}

TEST(BatchEngine, MatchesDirectPipelineRun)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Dense;
    req.noiseSeed = 42;
    const RequestResult result = engine.submit(req).get();

    DiffusionPipeline pipe(cfg);
    DenseExecutor exec;
    const Matrix expected = pipe.run(exec, /*noise_seed=*/42);
    ASSERT_EQ(result.output.size(), expected.size());
    for (Index e = 0; e < expected.size(); ++e)
        EXPECT_EQ(result.output.data()[e], expected.data()[e]);
    EXPECT_EQ(result.stats.totalExecuted(),
              exec.stats().totalExecuted());
}

TEST(BatchEngine, SparseRequestsKeepIndependentReuseState)
{
    // Two concurrent Exion requests with different seeds must match
    // their isolated single-stream runs: shared FFN-Reuse state would
    // corrupt masks and partial sums across streams.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::vector<ServeRequest> batch(2);
    batch[0].benchmark = cfg.benchmark;
    batch[0].mode = ExecMode::Exion;
    batch[0].noiseSeed = 1;
    batch[1] = batch[0];
    batch[1].id = 1;
    batch[1].noiseSeed = 2;

    const auto results = engine.runBatch(batch);
    for (int i = 0; i < 2; ++i) {
        DiffusionPipeline pipe(cfg);
        SparseExecutor exec(SparseExecutor::fromConfig(
            cfg, /*use_ffn_reuse=*/true, /*use_ep=*/true,
            /*quantize=*/false));
        const Matrix expected =
            pipe.run(exec, /*noise_seed=*/1 + static_cast<u64>(i));
        for (Index e = 0; e < expected.size(); ++e)
            EXPECT_EQ(results[i].output.data()[e], expected.data()[e])
                << "request " << i << " element " << e;
    }
}

TEST(BatchEngine, TracksConMergeStatsPerRequest)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Exion;
    req.trackConMerge = true;
    const RequestResult tracked = engine.submit(req).get();
    // 6 iterations x 2 blocks of masks flow through ConMerge; the
    // dense-interval pattern fires onFfnMask every iteration.
    EXPECT_GT(tracked.conmerge.groups, 0u);
    EXPECT_GT(tracked.conmerge.matrixColumns, 0u);

    req.trackConMerge = false;
    const RequestResult untracked = engine.submit(req).get();
    EXPECT_EQ(untracked.conmerge.groups, 0u);

    // Accounting must not perturb numerics.
    for (Index e = 0; e < tracked.output.size(); ++e)
        EXPECT_EQ(tracked.output.data()[e], untracked.output.data()[e]);
}

TEST(BatchEngine, ResultsKeepRequestOrderAndIds)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    auto batch = mixedBatch(cfg.benchmark, 10);
    for (Index i = 0; i < batch.size(); ++i)
        batch[i].id = 1000 + static_cast<u64>(i);
    const auto results = engine.runBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (Index i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].id, 1000 + static_cast<u64>(i));
}

TEST(BatchEngine, ServesMultipleModels)
{
    const ModelConfig tiny = tinyConfig();
    ModelConfig other = makeTinyConfig(/*tokens=*/4, /*d_model=*/8,
                                       /*n_blocks=*/1, /*iterations=*/4);
    other.benchmark = Benchmark::DiT;

    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(tiny);
    engine.addModel(other);

    std::vector<ServeRequest> batch(2);
    batch[0].benchmark = tiny.benchmark;
    batch[1].benchmark = other.benchmark;
    batch[1].id = 1;
    const auto results = engine.runBatch(batch);
    EXPECT_EQ(results[0].output.rows(), tiny.latentTokens);
    EXPECT_EQ(results[1].output.rows(), other.latentTokens);
}

TEST(ExecContext, BindingIsolatesStatsAcrossContexts)
{
    DenseExecutor exec;
    ExecContext a, b;

    exec.bindContext(a);
    exec.beginIteration(3);
    exec.stats().qkvOpsDense = 10;

    exec.bindContext(b);
    EXPECT_EQ(exec.ctx().iteration, 0);
    EXPECT_EQ(exec.stats().qkvOpsDense, 0u);

    exec.unbindContext();
    EXPECT_EQ(a.iteration, 3);
    EXPECT_EQ(a.stats.qkvOpsDense, 10u);
}

} // namespace
} // namespace exion
