/**
 * @file
 * Tests for the batched serving engine: batched-vs-sequential
 * bit-identity under threading, priority scheduling, admission
 * control and cancellation; per-request state isolation; mixed
 * request scheduling; async submit/complete delivery (tickets,
 * callback, result queue); admission policies (class bounds, load
 * shedding, block-with-timeout); EngineMetrics reconciliation;
 * priority-inversion regression and ConMerge accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exion/serve/batch_engine.h"

namespace exion
{
namespace
{

ModelConfig
tinyConfig()
{
    return makeTinyConfig(/*tokens=*/8, /*d_model=*/16, /*n_blocks=*/2,
                          /*iterations=*/6);
}

/** A mixed batch over one tiny model: modes, seeds, quantisation. */
std::vector<ServeRequest>
mixedBatch(Benchmark b, int n)
{
    std::vector<ServeRequest> batch;
    const ExecMode modes[] = {ExecMode::Dense, ExecMode::FfnReuseOnly,
                              ExecMode::EpOnly, ExecMode::Exion};
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = b;
        req.mode = modes[i % 4];
        req.quantize = i % 3 == 0;
        req.noiseSeed = 100 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

void
expectBitIdentical(const std::vector<RequestResult> &a,
                   const std::vector<RequestResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (Index i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        ASSERT_EQ(a[i].output.rows(), b[i].output.rows());
        ASSERT_EQ(a[i].output.cols(), b[i].output.cols());
        for (Index e = 0; e < a[i].output.size(); ++e)
            EXPECT_EQ(a[i].output.data()[e], b[i].output.data()[e])
                << "request " << i << " element " << e;
        EXPECT_EQ(a[i].stats.totalExecuted(), b[i].stats.totalExecuted());
        EXPECT_EQ(a[i].stats.totalDense(), b[i].stats.totalDense());
    }
}

TEST(BatchEngine, BatchedMatchesSequentialBitExactly)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 12);
    const auto sequential = engine.runSequential(batch);
    const auto batched = engine.runBatch(batch);
    expectBitIdentical(sequential, batched);
}

TEST(BatchEngine, RepeatedBatchesAreDeterministic)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 3;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 8);
    expectBitIdentical(engine.runBatch(batch), engine.runBatch(batch));
}

TEST(BatchEngine, WorkerCountDoesNotChangeResults)
{
    const ModelConfig cfg = tinyConfig();
    const auto batch = mixedBatch(cfg.benchmark, 8);

    BatchEngine::Options one;
    one.workers = 1;
    BatchEngine engine1(one);
    engine1.addModel(cfg);

    BatchEngine::Options many;
    many.workers = 8;
    BatchEngine engine8(many);
    engine8.addModel(cfg);

    expectBitIdentical(engine1.runBatch(batch), engine8.runBatch(batch));
}

TEST(BatchEngine, PrioritiesDoNotChangeResultsAtAnyWorkerCount)
{
    // The priority queue reorders execution, never numerics: a batch
    // with adversarially mixed classes and deadlines must stay
    // bit-identical to its sequential run at 1, 2 and 8 workers.
    const ModelConfig cfg = tinyConfig();
    auto batch = mixedBatch(cfg.benchmark, 12);
    const Priority classes[] = {Priority::Low, Priority::Critical,
                                Priority::Normal, Priority::High};
    for (Index i = 0; i < batch.size(); ++i) {
        batch[i].priority = classes[i % 4];
        batch[i].deadlineSeconds =
            i % 3 == 0 ? 0.0 : 0.5 * static_cast<double>(i);
    }

    std::vector<RequestResult> reference;
    for (int workers : {1, 2, 8}) {
        BatchEngine::Options opts;
        opts.workers = workers;
        BatchEngine engine(opts);
        engine.addModel(cfg);
        if (reference.empty())
            reference = engine.runSequential(batch);
        expectBitIdentical(reference, engine.runBatch(batch));
    }
}

TEST(BatchEngine, MatchesDirectPipelineRun)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Dense;
    req.noiseSeed = 42;
    const RequestResult result = engine.submit(req).get();

    DiffusionPipeline pipe(cfg);
    DenseExecutor exec;
    const Matrix expected = pipe.run(exec, /*noise_seed=*/42);
    ASSERT_EQ(result.output.size(), expected.size());
    for (Index e = 0; e < expected.size(); ++e)
        EXPECT_EQ(result.output.data()[e], expected.data()[e]);
    EXPECT_EQ(result.stats.totalExecuted(),
              exec.stats().totalExecuted());
}

TEST(BatchEngine, SparseRequestsKeepIndependentReuseState)
{
    // Two concurrent Exion requests with different seeds must match
    // their isolated single-stream runs: shared FFN-Reuse state would
    // corrupt masks and partial sums across streams.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::vector<ServeRequest> batch(2);
    batch[0].benchmark = cfg.benchmark;
    batch[0].mode = ExecMode::Exion;
    batch[0].noiseSeed = 1;
    batch[1] = batch[0];
    batch[1].id = 1;
    batch[1].noiseSeed = 2;

    const auto results = engine.runBatch(batch);
    for (int i = 0; i < 2; ++i) {
        DiffusionPipeline pipe(cfg);
        SparseExecutor exec(SparseExecutor::fromConfig(
            cfg, /*use_ffn_reuse=*/true, /*use_ep=*/true,
            /*quantize=*/false));
        const Matrix expected =
            pipe.run(exec, /*noise_seed=*/1 + static_cast<u64>(i));
        for (Index e = 0; e < expected.size(); ++e)
            EXPECT_EQ(results[i].output.data()[e], expected.data()[e])
                << "request " << i << " element " << e;
    }
}

TEST(BatchEngine, TracksConMergeStatsPerRequest)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Exion;
    req.trackConMerge = true;
    const RequestResult tracked = engine.submit(req).get();
    // 6 iterations x 2 blocks of masks flow through ConMerge; the
    // dense-interval pattern fires onFfnMask every iteration.
    EXPECT_GT(tracked.conmerge.groups, 0u);
    EXPECT_GT(tracked.conmerge.matrixColumns, 0u);

    req.trackConMerge = false;
    const RequestResult untracked = engine.submit(req).get();
    EXPECT_EQ(untracked.conmerge.groups, 0u);

    // Accounting must not perturb numerics.
    for (Index e = 0; e < tracked.output.size(); ++e)
        EXPECT_EQ(tracked.output.data()[e], untracked.output.data()[e]);
}

TEST(BatchEngine, ResultsKeepRequestOrderAndIds)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    auto batch = mixedBatch(cfg.benchmark, 10);
    for (Index i = 0; i < batch.size(); ++i)
        batch[i].id = 1000 + static_cast<u64>(i);
    const auto results = engine.runBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (Index i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].id, 1000 + static_cast<u64>(i));
}

TEST(BatchEngine, ServesMultipleModels)
{
    const ModelConfig tiny = tinyConfig();
    ModelConfig other = makeTinyConfig(/*tokens=*/4, /*d_model=*/8,
                                       /*n_blocks=*/1, /*iterations=*/4);
    other.benchmark = Benchmark::DiT;

    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(tiny);
    engine.addModel(other);

    std::vector<ServeRequest> batch(2);
    batch[0].benchmark = tiny.benchmark;
    batch[1].benchmark = other.benchmark;
    batch[1].id = 1;
    const auto results = engine.runBatch(batch);
    EXPECT_EQ(results[0].output.rows(), tiny.latentTokens);
    EXPECT_EQ(results[1].output.rows(), other.latentTokens);
}

TEST(BatchEngine, TicketSurface)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    Ticket invalid;
    EXPECT_FALSE(invalid.valid());

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 77;
    const Ticket a = engine.submit(req);
    const Ticket b = engine.submit(req);
    EXPECT_TRUE(a.valid());
    EXPECT_LT(a.id(), b.id());

    a.wait();
    EXPECT_TRUE(a.ready());
    // get() copies; the ticket stays consumable.
    const RequestResult first = a.get();
    const RequestResult again = a.get();
    EXPECT_EQ(first.id, 77u);
    EXPECT_TRUE(first.ok());
    for (Index e = 0; e < first.output.size(); ++e)
        EXPECT_EQ(first.output.data()[e], again.output.data()[e]);
    b.wait();
    engine.waitIdle();
    EXPECT_EQ(engine.inFlight(), 0u);
}

TEST(BatchEngine, PriorityInversionRegression)
{
    // A burst of low-priority requests submitted first must not delay
    // a high-priority request's completion: with one worker and the
    // scheduler paused while the burst queues, the high-priority
    // request must be the first completion delivered.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    engine.pause();
    std::vector<Ticket> tickets;
    for (int i = 0; i < 6; ++i) {
        ServeRequest low;
        low.benchmark = cfg.benchmark;
        low.id = static_cast<u64>(i);
        low.priority = Priority::Low;
        low.noiseSeed = 10 + static_cast<u64>(i);
        tickets.push_back(engine.submit(low));
    }
    ServeRequest high;
    high.benchmark = cfg.benchmark;
    high.id = 999;
    high.priority = Priority::High;
    tickets.push_back(engine.submit(high));
    engine.resume();

    engine.waitIdle();
    ASSERT_EQ(completion_order.size(), 7u);
    EXPECT_EQ(completion_order.front(), 999u)
        << "high-priority request completed behind queued "
           "low-priority work";
}

TEST(BatchEngine, EarlierDeadlineRunsFirstWithinClass)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    // Same class; deadlines 30 s, 10 s, 20 s, none — EDF order is
    // 10 s, 20 s, 30 s, then the deadline-free request.
    const double deadlines[] = {30.0, 10.0, 20.0, 0.0};
    engine.pause();
    for (int i = 0; i < 4; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        req.deadlineSeconds = deadlines[i];
        engine.submit(req);
    }
    engine.resume();
    engine.waitIdle();

    const std::vector<u64> expected = {1, 2, 0, 3};
    EXPECT_EQ(completion_order, expected);
}

TEST(BatchEngine, CallbackAndQueueDeliveryAreEquivalent)
{
    // Every submit() delivers each completion to both the callback
    // and the result queue; the two views must be bit-identical.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 3;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex cb_mutex;
    std::vector<RequestResult> via_callback;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(cb_mutex);
        via_callback.push_back(r);
    });

    const auto batch = mixedBatch(cfg.benchmark, 9);
    for (const ServeRequest &req : batch)
        engine.submit(req);

    std::vector<RequestResult> via_queue;
    for (Index i = 0; i < batch.size(); ++i) {
        auto r = engine.results().pop();
        ASSERT_TRUE(r.has_value());
        via_queue.push_back(std::move(*r));
    }
    EXPECT_FALSE(engine.results().tryPop().has_value());
    engine.waitIdle();

    const auto by_id = [](const RequestResult &a,
                          const RequestResult &b) { return a.id < b.id; };
    std::sort(via_callback.begin(), via_callback.end(), by_id);
    std::sort(via_queue.begin(), via_queue.end(), by_id);
    expectBitIdentical(via_callback, via_queue);
    expectBitIdentical(via_queue, engine.runSequential(batch));
}

TEST(BatchEngine, ThrowingCallbackDoesNotBreakDelivery)
{
    // Regression: an exception escaping the completion callback must
    // not leave the Ticket promise unset (deadlocking get()) or the
    // in-flight counter stuck nonzero.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);
    engine.setOnComplete([](const RequestResult &) {
        throw std::runtime_error("misbehaving sink");
    });

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 3;
    const Ticket ticket = engine.submit(req);
    const RequestResult result = ticket.get();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.id, 3u);
    engine.waitIdle();
    EXPECT_EQ(engine.inFlight(), 0u);
    // The queue still got its copy despite the callback throwing.
    EXPECT_TRUE(engine.results().tryPop().has_value());
}

TEST(BatchEngine, QueueResultsOptionDisablesQueueDelivery)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    opts.queueResults = false;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    EXPECT_TRUE(engine.submit(req).get().ok());
    engine.waitIdle();
    EXPECT_EQ(engine.results().size(), 0u);
}

TEST(BatchEngine, ExtremeDeadlinesAreSafe)
{
    // Huge / infinite / NaN deadlines must not overflow the priority
    // encoding (UBSan-checked in CI); they clamp or count as "none"
    // and the requests still complete correctly.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const double deadlines[] = {
        1e18, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(), -5.0, 1e-9};
    std::vector<Ticket> tickets;
    for (Index i = 0; i < 5; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = i;
        req.deadlineSeconds = deadlines[i];
        tickets.push_back(engine.submit(req));
    }
    for (const Ticket &t : tickets)
        EXPECT_TRUE(t.get().ok());
}

TEST(BatchEngine, RunBatchDoesNotFeedResultQueue)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.runBatch(mixedBatch(cfg.benchmark, 4));
    EXPECT_EQ(engine.results().size(), 0u);
}

TEST(BatchEngine, ShutdownDrainsPendingAndClosesQueue)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    std::vector<Ticket> tickets;
    for (int i = 0; i < 5; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        tickets.push_back(engine.submit(req));
    }

    // Graceful: every pending request still runs to completion.
    engine.shutdown();
    for (const Ticket &t : tickets) {
        ASSERT_TRUE(t.ready());
        EXPECT_TRUE(t.get().ok());
    }

    // The queue still serves the drained results, then reports
    // closure instead of blocking forever.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(engine.results().pop().has_value());
    EXPECT_FALSE(engine.results().pop().has_value());
    EXPECT_TRUE(engine.results().closed());

    ServeRequest late;
    late.benchmark = cfg.benchmark;
    EXPECT_THROW(engine.submit(late), ThreadPoolStopped);
}

TEST(Ticket, DefaultConstructedIsInert)
{
    // Regression: ready()/wait()/cancel() on a default-constructed
    // ticket were UB on the invalid std::shared_future; they must be
    // safe no-ops instead.
    Ticket ticket;
    EXPECT_FALSE(ticket.valid());
    EXPECT_FALSE(ticket.ready());
    ticket.wait(); // must return immediately, not crash or block
    EXPECT_FALSE(ticket.cancel());
    EXPECT_EQ(ticket.id(), 0u);
}

TEST(BatchEngine, UnknownModelRejectedAtSubmitBoundary)
{
    // The bad request fails the submitter, not a worker mid-run:
    // trySubmit reports UnknownModel, submit throws a typed error.
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(tinyConfig());

    ServeRequest req;
    req.benchmark = Benchmark::DiT; // not registered
    req.priority = Priority::High;
    const SubmitOutcome outcome = engine.trySubmit(req);
    EXPECT_FALSE(outcome.accepted());
    EXPECT_EQ(outcome.reason, RejectReason::UnknownModel);
    EXPECT_FALSE(outcome.ticket.valid());
    EXPECT_THROW(engine.submit(req), UnknownModelError);

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::High).rejectedUnknownModel, 2u);
    EXPECT_EQ(m.accepted(), 0u);
}

TEST(BatchEngine, TrySubmitAcceptsAndCompletes)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 11;
    const SubmitOutcome outcome = engine.trySubmit(req);
    ASSERT_TRUE(outcome.accepted());
    EXPECT_FALSE(outcome.reason.has_value());
    const RequestResult result = outcome.ticket.get();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.id, 11u);
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).accepted, 1u);
    EXPECT_EQ(m.at(Priority::Normal).completed, 1u);
    EXPECT_EQ(m.rejected(), 0u);
    EXPECT_EQ(m.queueWaitSamples, 1u);
}

TEST(BatchEngine, ClassBoundRejectsQueueFull)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause(); // hold the ready queue still
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    std::vector<Ticket> accepted;
    for (int i = 0; i < 2; ++i) {
        const SubmitOutcome outcome = engine.trySubmit(req);
        ASSERT_TRUE(outcome.accepted()) << "submission " << i;
        accepted.push_back(outcome.ticket);
    }
    const SubmitOutcome refused = engine.trySubmit(req);
    EXPECT_EQ(refused.reason, RejectReason::QueueFull);
    // The throwing fast path reports the same decision as a typed
    // exception carrying the reason.
    try {
        engine.submit(req);
        FAIL() << "submit over the class bound did not throw";
    } catch (const AdmissionRejected &e) {
        EXPECT_EQ(e.reason(), RejectReason::QueueFull);
    }

    engine.resume();
    engine.waitIdle();
    for (Ticket &t : accepted)
        EXPECT_TRUE(t.get().ok());

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).accepted, 2u);
    EXPECT_EQ(m.at(Priority::Normal).rejectedQueueFull, 2u);
    EXPECT_EQ(m.at(Priority::Normal).completed, 2u);
    EXPECT_EQ(m.at(Priority::Normal).peakQueued, 2u);
    EXPECT_EQ(m.queueDepth(), 0u);
}

TEST(BatchEngine, OverloadShedsLowWhileHighCompletes)
{
    // Acceptance scenario: with a class-bounded queue and saturating
    // Low-priority offered load, High-priority trySubmit still
    // accepts and completes, Low is shed with LoadShedLow, and
    // snapshot() reconciles exactly with the observed outcomes.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 8;
    opts.admission.shedThreshold = 4;
    opts.admission.shedBelow = Priority::Normal;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    engine.pause(); // make the offered load saturate deterministically
    u64 low_accepted = 0, low_shed = 0;
    std::vector<Ticket> low_tickets;
    for (int i = 0; i < 10; ++i) {
        ServeRequest low;
        low.benchmark = cfg.benchmark;
        low.id = static_cast<u64>(i);
        low.priority = Priority::Low;
        low.noiseSeed = 50 + static_cast<u64>(i);
        const SubmitOutcome outcome = engine.trySubmit(low);
        if (outcome.accepted()) {
            ++low_accepted;
            low_tickets.push_back(outcome.ticket);
        } else {
            EXPECT_EQ(outcome.reason, RejectReason::LoadShedLow);
            ++low_shed;
        }
    }
    // Depth 0..3 admits, then the watermark (4) sheds the rest.
    EXPECT_EQ(low_accepted, 4u);
    EXPECT_EQ(low_shed, 6u);

    // High-priority traffic still gets through the saturated queue.
    ServeRequest high;
    high.benchmark = cfg.benchmark;
    high.id = 999;
    high.priority = Priority::High;
    const SubmitOutcome high_outcome = engine.trySubmit(high);
    ASSERT_TRUE(high_outcome.accepted());

    engine.resume();
    Ticket high_ticket = high_outcome.ticket;
    EXPECT_TRUE(high_ticket.get().ok());
    engine.waitIdle();

    // High completed ahead of every queued Low request.
    ASSERT_EQ(completion_order.size(), low_accepted + 1);
    EXPECT_EQ(completion_order.front(), 999u);

    // The snapshot reconciles exactly with what the caller observed.
    const EngineMetrics m = engine.snapshot();
    const ClassMetrics &low_m = m.at(Priority::Low);
    EXPECT_EQ(low_m.accepted, low_accepted);
    EXPECT_EQ(low_m.shed, low_shed);
    EXPECT_EQ(low_m.rejectedQueueFull, 0u);
    EXPECT_EQ(low_m.completed, low_accepted);
    EXPECT_EQ(low_m.cancelled, 0u);
    EXPECT_EQ(low_m.peakQueued, 4u);
    EXPECT_EQ(low_m.queued, 0u);
    const ClassMetrics &high_m = m.at(Priority::High);
    EXPECT_EQ(high_m.accepted, 1u);
    EXPECT_EQ(high_m.completed, 1u);
    EXPECT_EQ(high_m.rejected(), 0u);
    EXPECT_EQ(m.accepted(), low_accepted + 1);
    EXPECT_EQ(m.rejected(), low_shed);
    EXPECT_EQ(m.shed(), low_shed);
    EXPECT_EQ(m.completed(), m.accepted());
    EXPECT_EQ(m.queueDepth(), 0u);
    EXPECT_EQ(m.queueWaitSamples, m.completed());
    EXPECT_GE(m.queueWaitP99, m.queueWaitP50);
    for (Ticket &t : low_tickets)
        EXPECT_TRUE(t.get().ok());
}

TEST(BatchEngine, BlockModeAdmitsWhenSlotFrees)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 1;
    opts.admission.blockTimeoutSeconds = 30.0; // far beyond the stall
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 1;
    ASSERT_TRUE(engine.trySubmit(req).accepted()); // fills the class

    std::atomic<bool> admitted{false};
    std::thread submitter([&]() {
        ServeRequest blocked = req;
        blocked.id = 2;
        const SubmitOutcome outcome = engine.trySubmit(blocked);
        EXPECT_TRUE(outcome.accepted());
        admitted = true;
    });
    // The submitter must be blocked while the class is full.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(admitted.load());
    engine.resume(); // the worker starts request 1, freeing the slot
    submitter.join();
    EXPECT_TRUE(admitted.load());
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).accepted, 2u);
    EXPECT_EQ(m.at(Priority::Normal).completed, 2u);
    EXPECT_EQ(m.rejected(), 0u);
}

TEST(BatchEngine, BlockModeTimesOutToQueueFull)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 1;
    opts.admission.blockTimeoutSeconds = 0.02;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    ASSERT_TRUE(engine.trySubmit(req).accepted());
    // No slot ever frees while paused: the wait expires to QueueFull.
    const SubmitOutcome outcome = engine.trySubmit(req);
    EXPECT_EQ(outcome.reason, RejectReason::QueueFull);
    engine.resume();
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).accepted, 1u);
    EXPECT_EQ(m.at(Priority::Normal).rejectedQueueFull, 1u);
}

TEST(BatchEngine, CancelDequeuesNotStartedWork)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 1;
    Ticket keep = engine.submit(req);
    req.id = 2;
    Ticket victim = engine.submit(req);
    EXPECT_EQ(engine.inFlight(), 2u);

    ASSERT_TRUE(victim.cancel());
    EXPECT_FALSE(victim.cancel()) << "double cancel reported success";
    EXPECT_EQ(engine.inFlight(), 1u);
    // The cancelled ticket settles immediately with a marked result.
    ASSERT_TRUE(victim.ready());
    const RequestResult cancelled = victim.get();
    EXPECT_TRUE(cancelled.cancelled);
    EXPECT_FALSE(cancelled.ok());
    EXPECT_EQ(cancelled.error, "cancelled");
    EXPECT_EQ(cancelled.id, 2u);

    engine.resume();
    engine.waitIdle();
    EXPECT_TRUE(keep.get().ok());
    // A completed request is no longer cancellable.
    EXPECT_FALSE(keep.cancel());

    // Cancelled work never ran: only request 1 reached the queue.
    auto popped = engine.results().tryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->id, 1u);
    EXPECT_FALSE(engine.results().tryPop().has_value());

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).accepted, 2u);
    EXPECT_EQ(m.at(Priority::Normal).cancelled, 1u);
    EXPECT_EQ(m.at(Priority::Normal).completed, 1u);
    EXPECT_EQ(m.at(Priority::Normal).started, 1u);
}

TEST(BatchEngine, CancelFreesAdmissionSlot)
{
    // A cancellation must release the class-bound slot it held.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    Ticket first = engine.submit(req);
    EXPECT_EQ(engine.trySubmit(req).reason, RejectReason::QueueFull);
    ASSERT_TRUE(first.cancel());
    const SubmitOutcome retry = engine.trySubmit(req);
    EXPECT_TRUE(retry.accepted());
    engine.resume();
    engine.waitIdle();
}

TEST(BatchEngine, DeadlineMissIsCounted)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.priority = Priority::High;
    req.deadlineSeconds = 1e-4; // will expire during the stall
    Ticket ticket = engine.submit(req);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    engine.resume();
    EXPECT_TRUE(ticket.get().ok()); // advisory: the request still runs
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::High).deadlineMisses, 1u);
    EXPECT_EQ(m.deadlineMisses(), 1u);
}

TEST(BatchEngine, BitIdentityUnderAdmissionAndCancellation)
{
    // Admission control and cancellation reorder and remove work;
    // they must never perturb numerics. A mixed batch submitted
    // through the admission path alongside cancelled decoys stays
    // bit-identical to its sequential run at 1, 2 and 8 workers.
    const ModelConfig cfg = tinyConfig();
    auto batch = mixedBatch(cfg.benchmark, 8);
    const Priority classes[] = {Priority::Low, Priority::High,
                                Priority::Normal, Priority::Critical};
    for (Index i = 0; i < batch.size(); ++i)
        batch[i].priority = classes[i % 4];

    std::vector<RequestResult> reference;
    for (int workers : {1, 2, 8}) {
        BatchEngine::Options opts;
        opts.workers = workers;
        opts.admission.maxQueuedPerClass = 64; // active but generous
        opts.admission.shedThreshold = 64;
        BatchEngine engine(opts);
        engine.addModel(cfg);
        if (reference.empty())
            reference = engine.runSequential(batch);

        engine.pause();
        std::vector<Ticket> tickets;
        std::vector<Ticket> decoys;
        for (const ServeRequest &req : batch) {
            const SubmitOutcome outcome = engine.trySubmit(req);
            ASSERT_TRUE(outcome.accepted());
            tickets.push_back(outcome.ticket);

            ServeRequest decoy = req;
            decoy.id = 1000 + req.id;
            decoy.noiseSeed = 9999; // would change numerics if run
            const SubmitOutcome decoy_outcome = engine.trySubmit(decoy);
            ASSERT_TRUE(decoy_outcome.accepted());
            decoys.push_back(decoy_outcome.ticket);
        }
        for (Ticket &d : decoys)
            ASSERT_TRUE(d.cancel());
        engine.resume();

        std::vector<RequestResult> admitted;
        for (Ticket &t : tickets)
            admitted.push_back(t.get());
        expectBitIdentical(reference, admitted);
        for (Ticket &d : decoys)
            EXPECT_TRUE(d.get().cancelled);
        engine.waitIdle();

        const EngineMetrics m = engine.snapshot();
        EXPECT_EQ(m.accepted(), 2 * batch.size());
        EXPECT_EQ(m.cancelled(), batch.size());
        EXPECT_EQ(m.completed(), batch.size());
    }
}

TEST(BatchEngine, BoundedResultQueueDeliversEverything)
{
    // A results() bound far below the traffic throttles the workers
    // instead of dropping completions.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    opts.resultQueueCapacity = 2;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 8);
    for (const ServeRequest &req : batch)
        engine.submit(req);

    std::vector<u64> seen;
    for (Index i = 0; i < batch.size(); ++i) {
        auto r = engine.results().pop();
        ASSERT_TRUE(r.has_value());
        EXPECT_LE(engine.results().size(), 2u);
        seen.push_back(r->id);
    }
    engine.waitIdle();
    std::sort(seen.begin(), seen.end());
    for (Index i = 0; i < batch.size(); ++i)
        EXPECT_EQ(seen[i], static_cast<u64>(i));
}

TEST(BatchEngine, RunBatchOverAdmissionBoundFailsCleanly)
{
    // Regression: when admission refuses a request mid-batch,
    // runBatch must drain the already-admitted prefix (no abandoned
    // work, no lost delivery) before rethrowing — and the engine
    // stays fully serviceable afterwards.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause(); // guarantees the second submission hits the bound
    const auto batch = mixedBatch(cfg.benchmark, 4);
    std::thread batcher([&]() {
        EXPECT_THROW(engine.runBatch(batch), AdmissionRejected);
    });
    // Wait for the refusal: the admitted prefix (1 request) is in
    // flight, the thread is draining it, blocked on the paused pool.
    while (engine.snapshot().rejected() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    engine.resume();
    batcher.join();
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.accepted(), 1u);
    EXPECT_EQ(m.completed(), 1u);

    // Still serviceable: a whole batch fits once the queue drains.
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    EXPECT_TRUE(engine.submit(req).get().ok());
}

TEST(BatchEngine, TrySubmitAfterShutdownReportsStopped)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);
    engine.shutdown();

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    const SubmitOutcome outcome = engine.trySubmit(req);
    EXPECT_EQ(outcome.reason, RejectReason::Stopped);
    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).rejectedStopped, 1u);
}

TEST(ServeNames, RejectReasonNames)
{
    EXPECT_EQ(rejectReasonName(RejectReason::QueueFull), "queue-full");
    EXPECT_EQ(rejectReasonName(RejectReason::LoadShedLow),
              "load-shed-low");
    EXPECT_EQ(rejectReasonName(RejectReason::UnknownModel),
              "unknown-model");
    EXPECT_EQ(rejectReasonName(RejectReason::Stopped), "stopped");
}

TEST(ServeNames, PriorityAndModeNames)
{
    EXPECT_EQ(priorityName(Priority::Low), "low");
    EXPECT_EQ(priorityName(Priority::Normal), "normal");
    EXPECT_EQ(priorityName(Priority::High), "high");
    EXPECT_EQ(priorityName(Priority::Critical), "critical");
    EXPECT_EQ(execModeName(ExecMode::Dense), "dense");
    EXPECT_EQ(execModeName(ExecMode::Exion), "exion");
}

TEST(BatchEngine, CohortBatchingKeepsBitIdentity)
{
    // With cohort batching on, a mixed batch (modes, seeds,
    // quantisation, priorities) must still match its sequential run
    // bit for bit at several worker counts: cohorts only regroup
    // execution, never numerics.
    const ModelConfig cfg = tinyConfig();
    auto batch = mixedBatch(cfg.benchmark, 12);
    const Priority classes[] = {Priority::Low, Priority::Critical,
                                Priority::Normal, Priority::High};
    for (Index i = 0; i < batch.size(); ++i)
        batch[i].priority = classes[i % 4];

    std::vector<RequestResult> reference;
    for (int workers : {1, 2, 4}) {
        BatchEngine::Options opts;
        opts.workers = workers;
        opts.cohortBatching = true;
        opts.cohortMaxRows = 5;
        BatchEngine engine(opts);
        engine.addModel(cfg);
        if (reference.empty())
            reference = engine.runSequential(batch);
        expectBitIdentical(reference, engine.runBatch(batch));
    }
}

TEST(BatchEngine, CohortOfOneMatchesSoloEngine)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.mode = ExecMode::Exion;
    req.noiseSeed = 21;
    const RequestResult result = engine.submit(req).get();

    BatchEngine plain;
    plain.addModel(cfg);
    const auto solo = plain.runSequential({req});
    ASSERT_EQ(solo.size(), 1u);
    for (Index e = 0; e < solo[0].output.size(); ++e)
        EXPECT_EQ(result.output.data()[e], solo[0].output.data()[e]);
    EXPECT_EQ(result.stats.totalExecuted(),
              solo[0].stats.totalExecuted());
}

TEST(BatchEngine, CohortLeaderIsHighestPriorityMember)
{
    // With one worker and the scheduler paused while a mixed-priority
    // same-key burst queues, the worker starts the highest-priority
    // request — which therefore leads the cohort and absorbs the
    // rest; delivery follows absorption order, i.e. scheduling order.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    opts.cohortMaxRows = 8;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    engine.pause();
    const Priority classes[] = {Priority::Low, Priority::High,
                                Priority::Normal, Priority::Critical};
    for (int i = 0; i < 4; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        req.noiseSeed = 30 + static_cast<u64>(i);
        req.priority = classes[i];
        engine.submit(req);
    }
    engine.resume();
    engine.waitIdle();

    // Critical (id 3) led; absorption follows class order.
    const std::vector<u64> expected = {3, 1, 2, 0};
    EXPECT_EQ(completion_order, expected);

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.completed(), 4u);
    EXPECT_EQ(m.accepted(), 4u);
}

TEST(BatchEngine, CancelMidCohortRemovesOnlyThatRow)
{
    // One member cancels itself from its progress hook mid-flight;
    // its row leaves the cohort at the next boundary while the other
    // members complete bit-identically to their solo runs.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::vector<ServeRequest> batch(3);
    for (int i = 0; i < 3; ++i) {
        batch[i].benchmark = cfg.benchmark;
        batch[i].id = static_cast<u64>(i);
        batch[i].mode = ExecMode::Exion;
        batch[i].noiseSeed = 60 + static_cast<u64>(i);
    }

    engine.pause();
    Ticket keep_a = engine.submit(batch[0]);
    Ticket victim;
    ServeRequest victim_req = batch[1];
    victim_req.onProgress = [&victim](int iteration) {
        if (iteration == 1)
            victim.cancel();
    };
    victim = engine.submit(victim_req);
    Ticket keep_b = engine.submit(batch[2]);
    engine.resume();
    engine.waitIdle();

    const RequestResult cancelled = victim.get();
    EXPECT_TRUE(cancelled.cancelled);
    EXPECT_EQ(cancelled.error, "cancelled");
    EXPECT_EQ(cancelled.output.size(), 0u);

    BatchEngine plain;
    plain.addModel(cfg);
    const auto solo =
        plain.runSequential({batch[0], batch[2]});
    const RequestResult a = keep_a.get();
    const RequestResult b = keep_b.get();
    ASSERT_EQ(a.output.size(), solo[0].output.size());
    for (Index e = 0; e < a.output.size(); ++e)
        EXPECT_EQ(a.output.data()[e], solo[0].output.data()[e]);
    ASSERT_EQ(b.output.size(), solo[1].output.size());
    for (Index e = 0; e < b.output.size(); ++e)
        EXPECT_EQ(b.output.data()[e], solo[1].output.data()[e]);

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.cancelled(), 1u);
    EXPECT_EQ(m.completed(), 2u);
    EXPECT_EQ(m.accepted(), 3u);
}

TEST(BatchEngine, DeadlineMissedMemberDoesNotStallCohort)
{
    // A member whose deadline expired while queued still completes
    // with the cohort (deadlines are advisory); the miss is counted
    // and no other member is affected.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    std::vector<Ticket> tickets;
    for (int i = 0; i < 3; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        req.noiseSeed = 80 + static_cast<u64>(i);
        req.deadlineSeconds = i == 1 ? 1e-4 : 0.0;
        tickets.push_back(engine.submit(req));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine.resume();
    for (Ticket &t : tickets)
        EXPECT_TRUE(t.get().ok());
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.completed(), 3u);
    EXPECT_EQ(m.deadlineMisses(), 1u);
}

TEST(BatchEngine, CohortAbsorbsOnlyCompatibleRequests)
{
    // Different (mode, quantize) keys never share a cohort — results
    // must match the sequential reference even when incompatible
    // requests interleave in the queue.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    const auto batch = mixedBatch(cfg.benchmark, 8);
    engine.pause();
    std::vector<Ticket> tickets;
    for (const ServeRequest &req : batch)
        tickets.push_back(engine.submit(req));
    engine.resume();
    std::vector<RequestResult> results;
    for (Ticket &t : tickets)
        results.push_back(t.get());
    expectBitIdentical(engine.runSequential(batch), results);
}

TEST(BatchEngine, CohortWindowGathersBurst)
{
    // A formation window lets the first request wait briefly for the
    // rest of a burst; everything still completes and reconciles.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 2;
    opts.cohortBatching = true;
    opts.cohortWindowSeconds = 0.05;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::vector<Ticket> tickets;
    for (int i = 0; i < 6; ++i) {
        ServeRequest req;
        req.benchmark = cfg.benchmark;
        req.id = static_cast<u64>(i);
        req.noiseSeed = 90 + static_cast<u64>(i);
        tickets.push_back(engine.submit(req));
    }
    for (Ticket &t : tickets)
        EXPECT_TRUE(t.get().ok());
    engine.waitIdle();
    EXPECT_EQ(engine.snapshot().completed(), 6u);
}

TEST(BatchEngine, CohortRefillDoesNotStarveQueuedHigherPriorityWork)
{
    // Absorption is priority-preserving: a running cohort must not
    // pull in a same-key request that the scheduler ranks behind a
    // queued non-matching one — otherwise sustained same-key load
    // could hold the worker forever while higher-priority work waits.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex order_mutex;
    std::vector<u64> completion_order;
    engine.setOnComplete([&](const RequestResult &r) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(r.id);
    });

    ServeRequest low_same;
    low_same.benchmark = cfg.benchmark;
    low_same.id = 2;
    low_same.priority = Priority::Low;
    low_same.noiseSeed = 41;

    ServeRequest high_other;
    high_other.benchmark = cfg.benchmark;
    high_other.id = 3;
    high_other.mode = ExecMode::Dense; // different key
    high_other.priority = Priority::High;

    // The leader submits both mid-run, so they are queued at its next
    // iteration boundary: the same-key Low candidate loses to the
    // queued High request and must NOT be absorbed.
    std::atomic<bool> injected{false};
    ServeRequest leader;
    leader.benchmark = cfg.benchmark;
    leader.id = 1;
    leader.priority = Priority::Low;
    leader.onProgress = [&](int) {
        if (!injected.exchange(true)) {
            engine.submit(low_same);
            engine.submit(high_other);
        }
    };
    engine.submit(leader);
    engine.waitIdle();

    const std::vector<u64> expected = {1, 3, 2};
    EXPECT_EQ(completion_order, expected)
        << "same-key refill jumped a queued higher-priority request";
}

TEST(BatchEngine, CohortTracksConMergePerMember)
{
    // Per-slot observers: ConMerge accounting in a cohort must match
    // the solo run of the same request, and an untracked member in
    // the same cohort must stay untouched.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    ServeRequest tracked;
    tracked.benchmark = cfg.benchmark;
    tracked.id = 1;
    tracked.mode = ExecMode::Exion;
    tracked.trackConMerge = true;
    ServeRequest untracked = tracked;
    untracked.id = 2;
    untracked.trackConMerge = false;
    untracked.noiseSeed = 99;

    engine.pause();
    Ticket t1 = engine.submit(tracked);
    Ticket t2 = engine.submit(untracked);
    engine.resume();
    const RequestResult r1 = t1.get();
    const RequestResult r2 = t2.get();
    EXPECT_GT(r1.conmerge.groups, 0u);
    EXPECT_EQ(r2.conmerge.groups, 0u);

    BatchEngine plain;
    plain.addModel(cfg);
    const auto solo = plain.runSequential({tracked});
    EXPECT_EQ(r1.conmerge.groups, solo[0].conmerge.groups);
    EXPECT_EQ(r1.conmerge.matrixColumns, solo[0].conmerge.matrixColumns);
}

TEST(BatchEngine, RunningRequestCancelsCooperatively)
{
    // Solo path (cohort batching off): a started request cancelled
    // from its own progress hook stops at the next iteration boundary
    // with a cancelled result; callback and results() are not fed.
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::atomic<int> callbacks{0};
    engine.setOnComplete(
        [&](const RequestResult &) { ++callbacks; });

    Ticket ticket;
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.id = 5;
    req.onProgress = [&ticket](int iteration) {
        if (iteration == 2) {
            EXPECT_TRUE(ticket.cancel());
        }
    };
    engine.pause(); // the ticket must exist before the hook can fire
    ticket = engine.submit(req);
    engine.resume();
    const RequestResult result = ticket.get();
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.error, "cancelled");
    EXPECT_EQ(result.id, 5u);
    engine.waitIdle();

    EXPECT_EQ(callbacks.load(), 0);
    EXPECT_FALSE(engine.results().tryPop().has_value());
    const EngineMetrics m = engine.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).cancelled, 1u);
    EXPECT_EQ(m.at(Priority::Normal).completed, 0u);
    EXPECT_EQ(m.at(Priority::Normal).started, 1u);
    EXPECT_EQ(engine.inFlight(), 0u);
    // A second cancel of the same (already cancelled) request fails.
    EXPECT_FALSE(ticket.cancel());
}

TEST(BatchEngine, ProgressHookReportsEveryIteration)
{
    const ModelConfig cfg = tinyConfig(); // 6 iterations
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex mu;
    std::vector<int> seen;
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    req.onProgress = [&](int iteration) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(iteration);
    };
    EXPECT_TRUE(engine.submit(req).get().ok());
    const std::vector<int> expected = {0, 1, 2, 3, 4, 5};
    EXPECT_EQ(seen, expected);
}

TEST(BatchEngine, QueueFullCarriesRetryAfterHint)
{
    const ModelConfig cfg = tinyConfig();
    BatchEngine::Options opts;
    opts.workers = 1;
    opts.admission.maxQueuedPerClass = 1;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    ServeRequest req;
    req.benchmark = cfg.benchmark;
    const SubmitOutcome accepted = engine.trySubmit(req);
    ASSERT_TRUE(accepted.accepted());
    EXPECT_EQ(accepted.suggestedBackoffSeconds, 0.0);

    const SubmitOutcome refused = engine.trySubmit(req);
    EXPECT_EQ(refused.reason, RejectReason::QueueFull);
    // No wait samples yet: the default nudge.
    EXPECT_GT(refused.suggestedBackoffSeconds, 0.0);
    EXPECT_LE(refused.suggestedBackoffSeconds, 5.0);

    // The throwing path carries the same hint.
    try {
        engine.submit(req);
        FAIL() << "submit over the class bound did not throw";
    } catch (const AdmissionRejected &e) {
        EXPECT_EQ(e.reason(), RejectReason::QueueFull);
        EXPECT_GT(e.suggestedBackoffSeconds(), 0.0);
    }
    engine.resume();
    engine.waitIdle();

    // With completions recorded, the hint tracks the class median
    // queue wait (clamped to the sane range).
    const SubmitOutcome ok2 = engine.trySubmit(req);
    ASSERT_TRUE(ok2.accepted());
    engine.waitIdle();
    const EngineMetrics m = engine.snapshot();
    EXPECT_GT(m.at(Priority::Normal).queueWaitSamples, 0u);
}

TEST(BatchEngine, UnknownModelHasNoRetryHint)
{
    BatchEngine::Options opts;
    opts.workers = 1;
    BatchEngine engine(opts);
    engine.addModel(tinyConfig());

    ServeRequest req;
    req.benchmark = Benchmark::DiT; // not registered
    const SubmitOutcome outcome = engine.trySubmit(req);
    EXPECT_EQ(outcome.reason, RejectReason::UnknownModel);
    EXPECT_EQ(outcome.suggestedBackoffSeconds, 0.0);
}

TEST(ExecContext, BindingIsolatesStatsAcrossContexts)
{
    DenseExecutor exec;
    ExecContext a, b;

    exec.bindContext(a);
    exec.beginIteration(3);
    exec.stats().qkvOpsDense = 10;

    exec.bindContext(b);
    EXPECT_EQ(exec.ctx().iteration, 0);
    EXPECT_EQ(exec.stats().qkvOpsDense, 0u);

    exec.unbindContext();
    EXPECT_EQ(a.iteration, 3);
    EXPECT_EQ(a.stats.qkvOpsDense, 10u);
}

} // namespace
} // namespace exion
