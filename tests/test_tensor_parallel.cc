/**
 * @file
 * Tensor-parallel differential tests: every projection GEMM
 * column-sliced across a slice plan, each slice computed as its own
 * task, must reproduce the solo run bit for bit (maxAbsDiff == 0 and
 * byte-identical buffers) — across execution modes, quantisation,
 * GEMM backends, SIMD tiers, slice counts, slice runners, cohort
 * stacking and the serving engine's tensorParallel option.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "exion/common/threadpool.h"
#include "exion/model/pipeline.h"
#include "exion/serve/batch_engine.h"
#include "exion/sparsity/cohort_executor.h"
#include "exion/tensor/matmul_slice.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

SparseExecutor::Options
optionsFor(const ModelConfig &cfg, ExecMode mode, bool quantize,
           GemmBackend backend = defaultGemmBackend(),
           SimdTier simd = defaultSimdTier(), const TpContext &tp = {})
{
    const bool ffnr =
        mode == ExecMode::FfnReuseOnly || mode == ExecMode::Exion;
    const bool ep = mode == ExecMode::EpOnly || mode == ExecMode::Exion;
    SparseExecutor::Options opt =
        SparseExecutor::fromConfig(cfg, ffnr, ep, quantize);
    opt.gemm = backend;
    opt.simd = simd;
    opt.tp = tp;
    return opt;
}

struct RunResult
{
    Matrix output;
    ExecStats stats;
};

/** One full denoising run with the given slice context ({} = solo). */
RunResult
runWith(const DiffusionPipeline &pipe, ExecMode mode, bool quantize,
        u64 seed, GemmBackend backend = defaultGemmBackend(),
        SimdTier simd = defaultSimdTier(), const TpContext &tp = {})
{
    RunResult out;
    if (mode == ExecMode::Dense) {
        DenseExecutor exec(quantize, backend, simd, tp);
        out.output = pipe.run(exec, seed);
        out.stats = exec.stats();
    } else {
        SparseExecutor exec(
            optionsFor(pipe.config(), mode, quantize, backend, simd, tp));
        out.output = pipe.run(exec, seed);
        out.stats = exec.stats();
    }
    return out;
}

/** maxAbsDiff == 0 *and* the raw buffers are byte-identical (the
    memcmp also distinguishes -0.0f / NaN payloads the float compare
    would miss). */
void
expectBitIdentical(const Matrix &tp, const Matrix &solo,
                   const char *label)
{
    ASSERT_EQ(tp.rows(), solo.rows()) << label;
    ASSERT_EQ(tp.cols(), solo.cols()) << label;
    double max_abs_diff = 0.0;
    for (Index e = 0; e < tp.size(); ++e) {
        const double d = std::fabs(static_cast<double>(tp.data()[e])
                                   - static_cast<double>(solo.data()[e]));
        if (d > max_abs_diff) {
            max_abs_diff = d;
        }
    }
    EXPECT_EQ(max_abs_diff, 0.0) << label;
    EXPECT_EQ(std::memcmp(tp.data().data(), solo.data().data(),
                          static_cast<size_t>(tp.size())
                              * sizeof(float)),
              0)
        << label;
}

/** Op accounting must be slice-invariant: TP splits the work, it
    never changes what counts as executed. */
void
expectSameStats(const ExecStats &a, const ExecStats &b)
{
    EXPECT_EQ(a.qkvOpsDense, b.qkvOpsDense);
    EXPECT_EQ(a.qkvOpsExecuted, b.qkvOpsExecuted);
    EXPECT_EQ(a.attnOpsDense, b.attnOpsDense);
    EXPECT_EQ(a.attnOpsExecuted, b.attnOpsExecuted);
    EXPECT_EQ(a.ffnOpsDense, b.ffnOpsDense);
    EXPECT_EQ(a.ffnOpsExecuted, b.ffnOpsExecuted);
    EXPECT_EQ(a.ffnSparsitySum, b.ffnSparsitySum);
    EXPECT_EQ(a.ffnSparsitySamples, b.ffnSparsitySamples);
    EXPECT_EQ(a.scoreSparsitySum, b.scoreSparsitySum);
    EXPECT_EQ(a.scoreSparsitySamples, b.scoreSparsitySamples);
    EXPECT_EQ(a.qRowsSkipped, b.qRowsSkipped);
    EXPECT_EQ(a.kColsSkipped, b.kColsSkipped);
    EXPECT_EQ(a.vColsSkipped, b.vColsSkipped);
}

ModelConfig
tinyConfig()
{
    ModelConfig cfg = makeTinyConfig(8, 16, 2, 4);
    // Cross the dense/sparse FFN-Reuse boundary every iteration.
    cfg.ffnReuse.denseInterval = 1;
    return cfg;
}

const ExecMode kModes[] = {ExecMode::Dense, ExecMode::EpOnly,
                           ExecMode::FfnReuseOnly, ExecMode::Exion};

/**
 * The core gate: every mode x quantize x slice count, slices forked
 * onto a real ThreadPool, must be bit-identical to solo — output and
 * stats.
 */
TEST(TensorParallel, AllModesMatchSoloOnPool)
{
    const ModelConfig cfg = tinyConfig();
    const DiffusionPipeline pipe(cfg);
    ThreadPool pool(4);
    PoolSliceRunner runner(pool);

    for (ExecMode mode : kModes) {
        for (bool quantize : {false, true}) {
            const RunResult solo = runWith(pipe, mode, quantize, 77);
            for (int n : {2, 3, 4}) {
                SCOPED_TRACE(execModeName(mode) + std::string(" q=")
                             + (quantize ? "1" : "0") + " tp="
                             + std::to_string(n));
                const TpContext tp{n, &runner};
                const RunResult par = runWith(
                    pipe, mode, quantize, 77, defaultGemmBackend(),
                    defaultSimdTier(), tp);
                expectBitIdentical(par.output, solo.output, "output");
                expectSameStats(par.stats, solo.stats);
            }
        }
    }
}

/** Bit-identity must hold under every GEMM backend and every
    bit-exact SIMD tier, not just the defaults. */
TEST(TensorParallel, EveryBackendAndTierMatchesSolo)
{
    const ModelConfig cfg = tinyConfig();
    const DiffusionPipeline pipe(cfg);
    ThreadPool pool(3);
    PoolSliceRunner runner(pool);
    const TpContext tp{3, &runner};

    for (GemmBackend backend :
         {GemmBackend::Reference, GemmBackend::Blocked}) {
        for (SimdTier simd : {SimdTier::Scalar, SimdTier::Exact}) {
            for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
                SCOPED_TRACE(std::string(gemmBackendName(backend)) + "/"
                             + simdTierName(simd) + "/"
                             + execModeName(mode));
                const RunResult solo =
                    runWith(pipe, mode, false, 5, backend, simd);
                const RunResult par =
                    runWith(pipe, mode, false, 5, backend, simd, tp);
                expectBitIdentical(par.output, solo.output, "output");
                expectSameStats(par.stats, solo.stats);
            }
        }
    }
}

/** Reduced-scale paper benchmarks, full EXION mode: transformer
    stacks, UNet ResBlocks / GEGLU / pooling, DiT. */
TEST(TensorParallel, BenchmarksMatchSolo)
{
    ThreadPool pool(4);
    PoolSliceRunner runner(pool);
    const TpContext tp{4, &runner};

    for (Benchmark b : {Benchmark::MLD, Benchmark::MakeAnAudio,
                        Benchmark::DiT}) {
        ModelConfig cfg = makeConfig(b, Scale::Reduced);
        cfg.iterations = 3;
        cfg.ffnReuse.denseInterval = 1;
        const DiffusionPipeline pipe(cfg);
        for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
            SCOPED_TRACE(cfg.name + " " + execModeName(mode));
            const RunResult solo = runWith(pipe, mode, false, 123);
            const RunResult par =
                runWith(pipe, mode, false, 123, defaultGemmBackend(),
                        defaultSimdTier(), tp);
            expectBitIdentical(par.output, solo.output, "output");
            expectSameStats(par.stats, solo.stats);
        }
    }
}

/** The runner is a transport, not a math change: serial runner,
    pool runner and a null runner (inline fallback) all agree. */
TEST(TensorParallel, RunnerChoiceIsInvisible)
{
    const ModelConfig cfg = tinyConfig();
    const DiffusionPipeline pipe(cfg);
    const RunResult solo = runWith(pipe, ExecMode::Exion, false, 9);

    SerialSliceRunner serial;
    const RunResult ser =
        runWith(pipe, ExecMode::Exion, false, 9, defaultGemmBackend(),
                defaultSimdTier(), TpContext{4, &serial});
    expectBitIdentical(ser.output, solo.output, "serial runner");

    ThreadPool pool(2);
    PoolSliceRunner pooled(pool);
    const RunResult par =
        runWith(pipe, ExecMode::Exion, false, 9, defaultGemmBackend(),
                defaultSimdTier(), TpContext{4, &pooled});
    expectBitIdentical(par.output, solo.output, "pool runner");

    // Active slice count but no runner: runSliced computes inline.
    const RunResult inlined =
        runWith(pipe, ExecMode::Exion, false, 9, defaultGemmBackend(),
                defaultSimdTier(), TpContext{4, nullptr});
    expectBitIdentical(inlined.output, solo.output, "null runner");
}

/** More slices than weight columns: trailing slices go empty, the
    merge must still cover every column exactly once. */
TEST(TensorParallel, MoreSlicesThanColumnsMatchesSolo)
{
    const ModelConfig cfg = tinyConfig(); // d_model = 16
    const DiffusionPipeline pipe(cfg);
    ThreadPool pool(2);
    PoolSliceRunner runner(pool);

    for (bool quantize : {false, true}) {
        const RunResult solo = runWith(pipe, ExecMode::Exion, quantize, 31);
        const RunResult par = runWith(
            pipe, ExecMode::Exion, quantize, 31, defaultGemmBackend(),
            defaultSimdTier(), TpContext{64, &runner});
        SCOPED_TRACE(quantize ? "quantized" : "float");
        expectBitIdentical(par.output, solo.output, "output");
        expectSameStats(par.stats, solo.stats);
    }
}

/** TP composes with cohort stacking: a cohort-of-N stepping with a
    slice context reproduces each member's solo (tp=1) run. */
TEST(TensorParallel, CohortWithTpMatchesSoloMembers)
{
    const ModelConfig cfg = tinyConfig();
    const DiffusionPipeline pipe(cfg);
    ThreadPool pool(4);
    PoolSliceRunner runner(pool);
    const TpContext tp{4, &runner};

    for (ExecMode mode : kModes) {
        CohortExecutor exec(optionsFor(cfg, mode, /*quantize=*/false,
                                       defaultGemmBackend(),
                                       defaultSimdTier(), tp));
        CohortRun run(pipe, exec);
        std::vector<Index> slots;
        for (Index i = 0; i < 3; ++i) {
            slots.push_back(run.join(500 + 11 * i));
        }
        while (!run.done()) {
            run.step();
        }
        for (Index i = 0; i < 3; ++i) {
            SCOPED_TRACE(execModeName(mode) + std::string(" member ")
                         + std::to_string(i));
            const RunResult solo =
                runWith(pipe, mode, false, 500 + 11 * i);
            expectBitIdentical(run.takeResult(slots[i]), solo.output,
                               "output");
            expectSameStats(exec.slotContext(slots[i]).stats,
                            solo.stats);
        }
    }
}

/** Engine-level: a tensorParallel=4 engine serves the same bytes as
    a tensorParallel=1 engine, through both the sequential reference
    path and the concurrent pool path. */
TEST(TensorParallel, EngineMatchesSoloEngine)
{
    const ModelConfig cfg = tinyConfig();

    std::vector<ServeRequest> reqs;
    for (u64 i = 0; i < 4; ++i) {
        ServeRequest r;
        r.id = i + 1;
        r.benchmark = cfg.benchmark;
        r.mode = i % 2 == 0 ? ExecMode::Exion : ExecMode::Dense;
        r.quantize = i == 3;
        r.noiseSeed = 900 + i;
        reqs.push_back(r);
    }

    BatchEngine::Options solo_opts;
    solo_opts.workers = 2;
    BatchEngine solo(solo_opts);
    solo.addModel(cfg);
    const std::vector<RequestResult> want = solo.runSequential(reqs);

    BatchEngine::Options tp_opts;
    tp_opts.workers = 2;
    tp_opts.tensorParallel = 4;
    BatchEngine tped(tp_opts);
    tped.addModel(cfg);

    const std::vector<RequestResult> seq = tped.runSequential(reqs);
    const std::vector<RequestResult> par = tped.runBatch(reqs);
    ASSERT_EQ(seq.size(), want.size());
    ASSERT_EQ(par.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        ASSERT_TRUE(want[i].ok());
        ASSERT_TRUE(seq[i].ok());
        ASSERT_TRUE(par[i].ok());
        expectBitIdentical(seq[i].output, want[i].output, "sequential");
        expectBitIdentical(par[i].output, want[i].output, "batch");
        expectSameStats(seq[i].stats, want[i].stats);
        expectSameStats(par[i].stats, want[i].stats);
    }
}

/** TP + cohort batching together in the engine stay bit-identical. */
TEST(TensorParallel, EngineTpComposesWithCohortBatching)
{
    const ModelConfig cfg = tinyConfig();

    std::vector<ServeRequest> reqs;
    for (u64 i = 0; i < 4; ++i) {
        ServeRequest r;
        r.id = i + 1;
        r.benchmark = cfg.benchmark;
        r.mode = ExecMode::Exion;
        r.noiseSeed = 40 + i;
        reqs.push_back(r);
    }

    BatchEngine::Options solo_opts;
    solo_opts.workers = 1;
    BatchEngine solo(solo_opts);
    solo.addModel(cfg);
    const std::vector<RequestResult> want = solo.runSequential(reqs);

    BatchEngine::Options opts;
    opts.workers = 2;
    opts.tensorParallel = 2;
    opts.cohortBatching = true;
    BatchEngine engine(opts);
    engine.addModel(cfg);
    const std::vector<RequestResult> got = engine.runBatch(reqs);

    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        ASSERT_TRUE(got[i].ok());
        expectBitIdentical(got[i].output, want[i].output, "output");
        expectSameStats(got[i].stats, want[i].stats);
    }
}

/** tensorParallel < 1 warns and clamps to solo behaviour. */
TEST(TensorParallel, EngineClampsNonPositiveSliceCount)
{
    const ModelConfig cfg = tinyConfig();
    ServeRequest r;
    r.benchmark = cfg.benchmark;
    r.mode = ExecMode::Exion;
    r.noiseSeed = 3;

    BatchEngine::Options solo_opts;
    solo_opts.workers = 1;
    BatchEngine solo(solo_opts);
    solo.addModel(cfg);
    const RequestResult want = solo.runSequential({r})[0];

    BatchEngine::Options opts;
    opts.workers = 1;
    opts.tensorParallel = -3;
    BatchEngine engine(opts);
    engine.addModel(cfg);
    const RequestResult got = engine.runSequential({r})[0];
    ASSERT_TRUE(got.ok());
    expectBitIdentical(got.output, want.output, "output");
}

} // namespace
} // namespace exion
