/**
 * @file
 * Serving-metrics tests: the Prometheus text exposition (golden
 * format), per-class queue-wait medians and the MetricsCollector
 * windows that feed the engine's retry-after hints.
 */

#include <gtest/gtest.h>

#include <string>

#include "exion/serve/metrics.h"

namespace exion
{
namespace
{

TEST(EngineMetricsPrometheus, GoldenFormat)
{
    // Hand-built snapshot with exactly-representable values so the
    // rendered text is stable byte for byte.
    EngineMetrics m;
    ClassMetrics &low = m.perClass[classIndex(Priority::Low)];
    low.accepted = 5;
    low.shed = 2;
    low.started = 5;
    low.completed = 4;
    low.cancelled = 1;
    low.queued = 3;
    low.peakQueued = 7;
    low.queueWaitP50 = 0.25;
    ClassMetrics &high = m.perClass[classIndex(Priority::High)];
    high.accepted = 1;
    high.started = 1;
    high.completed = 1;
    high.failed = 1;
    high.deadlineMisses = 1;
    m.queueWaitP50 = 0.5;
    m.queueWaitP99 = 2.0;
    m.queueWaitSamples = 6;

    const std::string text = m.toPrometheusText();

    const std::string expected_accepted =
        "# HELP exion_serve_accepted_total Requests admitted into the "
        "ready queue.\n"
        "# TYPE exion_serve_accepted_total counter\n"
        "exion_serve_accepted_total{class=\"low\"} 5\n"
        "exion_serve_accepted_total{class=\"normal\"} 0\n"
        "exion_serve_accepted_total{class=\"high\"} 1\n"
        "exion_serve_accepted_total{class=\"critical\"} 0\n";
    EXPECT_NE(text.find(expected_accepted), std::string::npos)
        << text;

    const std::string expected_summary =
        "# HELP exion_serve_queue_wait_seconds Queue wait from "
        "acceptance to worker start, over the recent window.\n"
        "# TYPE exion_serve_queue_wait_seconds summary\n"
        "exion_serve_queue_wait_seconds{quantile=\"0.5\"} 0.5\n"
        "exion_serve_queue_wait_seconds{quantile=\"0.99\"} 2\n"
        "exion_serve_queue_wait_seconds_count 6\n";
    EXPECT_NE(text.find(expected_summary), std::string::npos) << text;

    EXPECT_NE(
        text.find("exion_serve_shed_total{class=\"low\"} 2\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("exion_serve_failed_total{class=\"high\"} 1\n"),
        std::string::npos);
    EXPECT_NE(text.find("exion_serve_deadline_misses_total{class="
                        "\"high\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("exion_serve_ready_queue_depth{class=\"low\"}"
                        " 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("exion_serve_ready_queue_depth_peak{class="
                        "\"low\"} 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("exion_serve_class_queue_wait_p50_seconds{"
                        "class=\"low\"} 0.25\n"),
              std::string::npos);

    // Every family carries HELP/TYPE headers and the exposition ends
    // with a newline, as the text format requires.
    EXPECT_EQ(text.back(), '\n');
    EXPECT_EQ(text.find("# HELP"), 0u);
}

TEST(EngineMetricsPrometheus, EmptySnapshotRendersZeros)
{
    const EngineMetrics m;
    const std::string text = m.toPrometheusText();
    EXPECT_NE(
        text.find("exion_serve_accepted_total{class=\"normal\"} 0\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("exion_serve_queue_wait_seconds_count 0\n"),
        std::string::npos);
}

TEST(MetricsCollector, PerClassMedianTracksThatClassOnly)
{
    MetricsCollector collector;
    collector.onAccepted(Priority::Low);
    collector.onAccepted(Priority::High);
    for (int i = 0; i < 5; ++i)
        collector.onStarted(Priority::Low, 1.0);
    collector.onStarted(Priority::High, 0.125);

    EXPECT_DOUBLE_EQ(collector.classQueueWaitP50(Priority::Low), 1.0);
    EXPECT_DOUBLE_EQ(collector.classQueueWaitP50(Priority::High),
                     0.125);
    EXPECT_DOUBLE_EQ(collector.classQueueWaitP50(Priority::Critical),
                     0.0);

    const EngineMetrics m = collector.snapshot();
    EXPECT_DOUBLE_EQ(m.at(Priority::Low).queueWaitP50, 1.0);
    EXPECT_EQ(m.at(Priority::Low).queueWaitSamples, 5u);
    EXPECT_DOUBLE_EQ(m.at(Priority::High).queueWaitP50, 0.125);
    EXPECT_EQ(m.at(Priority::Normal).queueWaitSamples, 0u);
}

TEST(MetricsCollector, ClassWindowIsBounded)
{
    MetricsCollector collector;
    // Overfill the class window; the median must reflect recent
    // (retained) samples, not grow without bound.
    for (Index i = 0; i < MetricsCollector::kClassWaitWindow + 64; ++i)
        collector.onStarted(Priority::Normal, 2.0);
    const EngineMetrics m = collector.snapshot();
    EXPECT_EQ(m.at(Priority::Normal).queueWaitSamples,
              static_cast<u64>(MetricsCollector::kClassWaitWindow));
    EXPECT_DOUBLE_EQ(m.at(Priority::Normal).queueWaitP50, 2.0);
}

} // namespace
} // namespace exion
