/**
 * @file
 * Tests for the net layer: the HTTP/1.1 request parser and response
 * writer as pure byte-level golden tests (no sockets), then the
 * socket server itself — lifecycle, keep-alive, pipelining, limits
 * and error generation — driven through the net/http_client.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "exion/net/http_client.h"
#include "exion/net/http_server.h"

namespace exion
{
namespace
{

HttpParseStatus
feedAll(HttpParser &parser, const std::string &bytes)
{
    return parser.feed(bytes.data(), bytes.size());
}

// ----------------------------------------------------------- parser

TEST(HttpParser, ParsesSimpleGet)
{
    HttpParser parser{HttpLimits{}};
    ASSERT_EQ(feedAll(parser,
                      "GET /healthz HTTP/1.1\r\nHost: x\r\n"
                      "X-Custom: hi\r\n\r\n"),
              HttpParseStatus::Ok);
    const HttpRequest &req = parser.request();
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/healthz");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_TRUE(req.keepAlive);
    ASSERT_NE(req.header("x-custom"), nullptr);
    EXPECT_EQ(*req.header("x-custom"), "hi");
    EXPECT_EQ(req.header("absent"), nullptr);
    EXPECT_TRUE(req.body.empty());
}

TEST(HttpParser, ParsesPostBody)
{
    HttpParser parser{HttpLimits{}};
    ASSERT_EQ(feedAll(parser,
                      "POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                      "Content-Type: application/json\r\n"
                      "Content-Length: 11\r\n\r\nhello world"),
              HttpParseStatus::Ok);
    EXPECT_EQ(parser.request().method, "POST");
    EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParser, IncrementalFeedingNeedsMoreThenCompletes)
{
    const std::string wire =
        "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
    HttpParser parser{HttpLimits{}};
    for (size_t i = 0; i + 1 < wire.size(); ++i)
        ASSERT_EQ(parser.feed(wire.data() + i, 1),
                  HttpParseStatus::NeedMore)
            << "byte " << i;
    EXPECT_EQ(parser.feed(wire.data() + wire.size() - 1, 1),
              HttpParseStatus::Ok);
    EXPECT_EQ(parser.request().body, "abc");
}

TEST(HttpParser, PipelinedRequestsSurviveReset)
{
    HttpParser parser{HttpLimits{}};
    ASSERT_EQ(feedAll(parser,
                      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
              HttpParseStatus::Ok);
    EXPECT_EQ(parser.request().target, "/a");
    // The second request was buffered; resetForNext() re-parses it
    // without another feed().
    parser.resetForNext();
    ASSERT_EQ(parser.status(), HttpParseStatus::Ok);
    EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParser, KeepAliveSemanticsPerVersion)
{
    HttpParser parser{HttpLimits{}};
    ASSERT_EQ(feedAll(parser, "GET / HTTP/1.0\r\n\r\n"),
              HttpParseStatus::Ok);
    EXPECT_FALSE(parser.request().keepAlive);

    HttpParser parser10ka{HttpLimits{}};
    ASSERT_EQ(feedAll(parser10ka,
                      "GET / HTTP/1.0\r\n"
                      "Connection: keep-alive\r\n\r\n"),
              HttpParseStatus::Ok);
    EXPECT_TRUE(parser10ka.request().keepAlive);

    HttpParser parser11close{HttpLimits{}};
    ASSERT_EQ(feedAll(parser11close,
                      "GET / HTTP/1.1\r\n"
                      "Connection: close\r\n\r\n"),
              HttpParseStatus::Ok);
    EXPECT_FALSE(parser11close.request().keepAlive);
}

TEST(HttpParser, MalformedRequestLinesAreBadRequests)
{
    for (const char *wire : {
             "GARBAGE\r\n\r\n",
             "GET\r\n\r\n",
             "GET /\r\n\r\n",
             "GET / HTTP/2.0\r\n\r\n",
             "GET nopath HTTP/1.1\r\n\r\n",
             "GET / HTTP/1.1 extra\r\n\r\n",
         }) {
        HttpParser parser{HttpLimits{}};
        EXPECT_EQ(feedAll(parser, wire), HttpParseStatus::BadRequest)
            << wire;
    }
}

TEST(HttpParser, HeaderWithoutColonIsBadRequest)
{
    HttpParser parser{HttpLimits{}};
    EXPECT_EQ(feedAll(parser, "GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
              HttpParseStatus::BadRequest);
}

TEST(HttpParser, ConflictingContentLengthsAreBadRequests)
{
    HttpParser parser{HttpLimits{}};
    EXPECT_EQ(feedAll(parser,
                      "POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                      "Content-Length: 4\r\n\r\n"),
              HttpParseStatus::BadRequest);

    HttpParser nonNumeric{HttpLimits{}};
    EXPECT_EQ(feedAll(nonNumeric,
                      "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
              HttpParseStatus::BadRequest);
}

TEST(HttpParser, TransferEncodingIsLengthRequired)
{
    HttpParser parser{HttpLimits{}};
    EXPECT_EQ(feedAll(parser,
                      "POST / HTTP/1.1\r\n"
                      "Transfer-Encoding: chunked\r\n\r\n"),
              HttpParseStatus::LengthRequired);
}

TEST(HttpParser, OversizedHeaderIsHeaderTooLarge)
{
    HttpLimits limits;
    limits.maxHeaderBytes = 64;
    HttpParser parser{limits};
    const std::string wire = "GET / HTTP/1.1\r\nX-Pad: "
        + std::string(128, 'a') + "\r\n\r\n";
    EXPECT_EQ(feedAll(parser, wire), HttpParseStatus::HeaderTooLarge);
}

TEST(HttpParser, OversizedBodyIsBodyTooLarge)
{
    HttpLimits limits;
    limits.maxBodyBytes = 8;
    HttpParser parser{limits};
    EXPECT_EQ(feedAll(parser,
                      "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
              HttpParseStatus::BodyTooLarge);
}

TEST(HttpParser, StatusCodeMapping)
{
    EXPECT_EQ(httpStatusFor(HttpParseStatus::BadRequest), 400);
    EXPECT_EQ(httpStatusFor(HttpParseStatus::LengthRequired), 411);
    EXPECT_EQ(httpStatusFor(HttpParseStatus::BodyTooLarge), 413);
    EXPECT_EQ(httpStatusFor(HttpParseStatus::HeaderTooLarge), 431);
    EXPECT_EQ(httpStatusText(404), "Not Found");
    EXPECT_EQ(httpStatusText(429), "Too Many Requests");
    EXPECT_EQ(httpStatusText(503), "Service Unavailable");
}

// ---------------------------------------------------------- writer

TEST(ResponseWriter, OneShotWireFormat)
{
    BufferResponseWriter writer;
    writer.setKeepAlive(true);
    EXPECT_TRUE(writer.respond(200, "text/plain", "ok\n",
                               {{"X-Extra", "1"}}));
    EXPECT_TRUE(writer.responded());
    EXPECT_EQ(writer.bytes(),
              "HTTP/1.1 200 OK\r\n"
              "Content-Type: text/plain\r\n"
              "X-Extra: 1\r\n"
              "Connection: keep-alive\r\n"
              "Content-Length: 3\r\n\r\nok\n");
}

TEST(ResponseWriter, ConnectionCloseHeader)
{
    BufferResponseWriter writer;
    writer.setKeepAlive(false);
    EXPECT_TRUE(writer.respond(404, "application/json", "{}"));
    EXPECT_NE(writer.bytes().find("Connection: close\r\n"),
              std::string::npos);
    EXPECT_TRUE(writer.connectionClose());
}

TEST(ResponseWriter, ChunkedFraming)
{
    BufferResponseWriter writer;
    writer.setKeepAlive(true);
    EXPECT_TRUE(writer.beginChunked(200, "text/event-stream",
                                    {{"Cache-Control", "no-cache"}}));
    EXPECT_TRUE(writer.writeChunk("hello"));
    EXPECT_TRUE(writer.writeChunk("world!"));
    EXPECT_TRUE(writer.endChunked());
    const std::string &wire = writer.bytes();
    EXPECT_NE(wire.find("Transfer-Encoding: chunked\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Cache-Control: no-cache\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n5\r\nhello\r\n6\r\nworld!\r\n"
                        "0\r\n\r\n"),
              std::string::npos);
}

TEST(ResponseWriter, PeerClosedFailsWrites)
{
    BufferResponseWriter writer;
    writer.setPeerClosed(true);
    EXPECT_TRUE(writer.peerClosed());
    EXPECT_FALSE(writer.respond(200, "text/plain", "x"));
}

// ---------------------------------------------------------- server

TEST(HttpServer, ServesOverARealSocket)
{
    HttpServer::Options opts; // ephemeral port
    HttpServer server(
        opts, [](const HttpRequest &req, ResponseWriter &writer) {
            writer.respond(200, "text/plain",
                           req.method + " " + req.target + "\n");
        });
    server.start();
    ASSERT_NE(server.port(), 0);
    ASSERT_TRUE(server.running());

    const HttpClientResponse resp =
        httpRequest("127.0.0.1", server.port(), "GET", "/hello");
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "GET /hello\n");
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(HttpServer, KeepAliveServesManyRequestsOnOneConnection)
{
    std::atomic<int> handled{0};
    HttpServer::Options opts;
    HttpServer server(
        opts, [&](const HttpRequest &req, ResponseWriter &writer) {
            handled.fetch_add(1);
            writer.respond(200, "text/plain", req.body);
        });
    server.start();
    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.connected());
    for (int i = 0; i < 5; ++i) {
        HttpClientResponse resp;
        ASSERT_TRUE(conn.request("POST", "/echo", resp,
                                 "payload " + std::to_string(i)));
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(resp.body, "payload " + std::to_string(i));
    }
    EXPECT_EQ(handled.load(), 5);
    EXPECT_EQ(server.connectionsAccepted(), 1u);
    server.stop();
}

TEST(HttpServer, GeneratesParseErrorResponses)
{
    HttpLimits limits;
    limits.maxBodyBytes = 16;
    HttpServer::Options opts;
    opts.limits = limits;
    HttpServer server(
        opts, [](const HttpRequest &, ResponseWriter &writer) {
            writer.respond(200, "text/plain", "unreachable");
        });
    server.start();

    // Malformed request line -> 400.
    EXPECT_EQ(httpRequest("127.0.0.1", server.port(), "BAD REQUEST",
                          "nopath")
                  .status,
              400);
    // Oversized body -> 413 before the handler ever runs.
    EXPECT_EQ(httpRequest("127.0.0.1", server.port(), "POST", "/x",
                          std::string(64, 'a'))
                  .status,
              413);
    server.stop();
}

TEST(HttpServer, HandlerExceptionBecomes500)
{
    HttpServer::Options opts;
    HttpServer server(opts,
                      [](const HttpRequest &, ResponseWriter &) {
                          throw std::runtime_error("boom");
                      });
    server.start();
    EXPECT_EQ(httpRequest("127.0.0.1", server.port(), "GET", "/")
                  .status,
              500);
    server.stop();
}

TEST(HttpServer, StopIsIdempotentAndJoinsStreams)
{
    HttpServer::Options opts;
    HttpServer server(
        opts, [](const HttpRequest &, ResponseWriter &writer) {
            writer.beginChunked(200, "text/event-stream");
            // Stream until the connection dies under us (stop()).
            while (writer.writeChunk(": tick\n\n"))
                ;
        });
    server.start();
    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", server.port());
    HttpClientResponse head;
    ASSERT_TRUE(conn.startStream("/stream", head));
    EXPECT_EQ(head.status, 200);
    std::string data;
    ASSERT_TRUE(conn.readStreamData(data)); // the stream is live
    server.stop();
    server.stop(); // idempotent
    EXPECT_FALSE(server.running());
}

} // namespace
} // namespace exion
