/**
 * @file
 * Tests for the accelerator layer: configs, the functional ConMerge
 * execution path, the sampled estimator, and the performance model.
 */

#include <gtest/gtest.h>

#include "exion/accel/exion_config.h"
#include "exion/accel/functional_device.h"
#include "exion/accel/perf_model.h"
#include "exion/accel/sparsity_profile.h"
#include "exion/common/rng.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(Config, PresetsMatchTableII)
{
    EXPECT_NEAR(exion4().peakTops(), 39.2, 0.5);
    EXPECT_NEAR(exion24().peakTops(), 235.2, 2.0);
    EXPECT_EQ(exion4().numDscs, 4);
    EXPECT_EQ(exion24().numDscs, 24);
    EXPECT_DOUBLE_EQ(exion4().dramBandwidthGbs, 51.0);
    EXPECT_DOUBLE_EQ(exion24().dramBandwidthGbs, 819.0);
}

TEST(Config, AblationFlags)
{
    EXPECT_FALSE(ablationUsesEp(Ablation::Base));
    EXPECT_TRUE(ablationUsesEp(Ablation::Ep));
    EXPECT_TRUE(ablationUsesFfnReuse(Ablation::Ffnr));
    EXPECT_TRUE(ablationUsesEp(Ablation::All));
    EXPECT_TRUE(ablationUsesFfnReuse(Ablation::All));
    EXPECT_EQ(ablationName(Ablation::All), "All");
}

TEST(FunctionalDevice, SparseMatmulMatchesReferenceEverywhere)
{
    Rng rng(5);
    const Index m = 40, k = 32, n = 64;
    Matrix input(m, k), weight(k, n);
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);
    Bitmask2D mask(m, n);
    for (Index r = 0; r < m; ++r)
        for (Index c = 0; c < n; ++c)
            if (rng.bernoulli(0.12))
                mask.set(r, c, true);

    const SparseMatmulResult result =
        sparseMatmulViaConMerge(input, weight, mask);
    const Matrix reference = matmul(input, weight);
    for (Index r = 0; r < m; ++r)
        for (Index c = 0; c < n; ++c) {
            if (mask.get(r, c))
                EXPECT_NEAR(result.output(r, c), reference(r, c), 1e-3);
            else
                EXPECT_FLOAT_EQ(result.output(r, c), 0.0f);
        }
    EXPECT_GT(result.conStats.tiles, 0u);
    EXPECT_LT(result.conStats.mergedRemainingFraction(), 1.0);
}

/** Property sweep: ConMerge + SDUE equals reference at any density. */
class FunctionalDensitySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(FunctionalDensitySweep, AlwaysExact)
{
    Rng rng(static_cast<u64>(GetParam() * 1000));
    const Index m = 24, k = 16, n = 40;
    Matrix input(m, k), weight(k, n);
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);
    Bitmask2D mask(m, n);
    for (Index r = 0; r < m; ++r)
        for (Index c = 0; c < n; ++c)
            if (rng.bernoulli(GetParam()))
                mask.set(r, c, true);
    const SparseMatmulResult result =
        sparseMatmulViaConMerge(input, weight, mask);
    const Matrix reference = matmul(input, weight);
    for (Index r = 0; r < m; ++r) {
        for (Index c = 0; c < n; ++c) {
            if (mask.get(r, c)) {
                ASSERT_NEAR(result.output(r, c), reference(r, c),
                            1e-3);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, FunctionalDensitySweep,
                         ::testing::Values(0.01, 0.05, 0.15, 0.35, 0.6,
                                           0.9, 1.0));

TEST(Estimator, SdFfnCompactsBelowTenPercent)
{
    // The Fig. 9 anchor: SD's FFN output merges from 77.4% remaining
    // columns to single digits.
    const ConMergeSummary summary = estimateFfnConMerge(
        4096, 1280, ffnMaskParams(Benchmark::StableDiffusion), 8, 99);
    EXPECT_NEAR(summary.condenseRemainingFraction, 0.774, 0.03);
    EXPECT_LT(summary.mergedRemainingFraction, 0.12);
    EXPECT_GT(summary.mergedRemainingFraction, 0.02);
    EXPECT_GT(summary.tileOccupancy, 0.05);
}

TEST(Estimator, MldCondensesStrongly)
{
    const ConMergeSummary summary = estimateFfnConMerge(
        8, 1024, ffnMaskParams(Benchmark::MLD), 8, 99);
    EXPECT_NEAR(summary.condenseRemainingFraction, 0.138, 0.05);
}

TEST(Estimator, ScoreMaskSummarySane)
{
    const ConMergeSummary summary = estimateScoreConMerge(
        256, 256, scoreMaskParams(Benchmark::DiT), 6, 7);
    EXPECT_GT(summary.mergedRemainingFraction, 0.0);
    EXPECT_LT(summary.mergedRemainingFraction, 0.6);
}

TEST(PerfModel, AblationLatencyOrdering)
{
    // DiT (large, transformer-only) separates every ablation point.
    const ModelConfig model = makeConfig(Benchmark::DiT, Scale::Full);
    const SparsityProfile prof = profileFor(Benchmark::DiT);
    auto latency = [&](Ablation a) {
        ExionPerfModel pm(exion24(), a);
        return pm.run(model, prof).latencySeconds;
    };
    const double all = latency(Ablation::All);
    const double ep = latency(Ablation::Ep);
    const double ffnr = latency(Ablation::Ffnr);
    const double base = latency(Ablation::Base);
    EXPECT_LT(all, ep);
    EXPECT_LT(all, ffnr);
    EXPECT_LT(ep, base);
    EXPECT_LT(ffnr, base);
}

TEST(PerfModel, TinyModelLatencyNeverDegrades)
{
    // Sub-tile matrices (MLD) may not gain latency from EP, but the
    // optimisations must never cost latency.
    const ModelConfig model = makeConfig(Benchmark::MLD, Scale::Full);
    const SparsityProfile prof = profileFor(Benchmark::MLD);
    auto latency = [&](Ablation a) {
        ExionPerfModel pm(exion4(), a);
        return pm.run(model, prof).latencySeconds;
    };
    EXPECT_LE(latency(Ablation::All), latency(Ablation::Base));
    EXPECT_LE(latency(Ablation::Ep), latency(Ablation::Base));
    EXPECT_LE(latency(Ablation::Ffnr), latency(Ablation::Base));
}

TEST(PerfModel, AblationEnergyOrdering)
{
    const ModelConfig model = makeConfig(Benchmark::DiT, Scale::Full);
    const SparsityProfile prof = profileFor(Benchmark::DiT);
    ExionPerfModel all(exion24(), Ablation::All);
    ExionPerfModel base(exion24(), Ablation::Base);
    const RunStats s_all = all.run(model, prof);
    const RunStats s_base = base.run(model, prof);
    EXPECT_LT(s_all.energy, s_base.energy);
    EXPECT_GT(s_all.topsPerWatt(), s_base.topsPerWatt());
    EXPECT_EQ(s_all.denseOps, s_base.denseOps);
    EXPECT_LT(s_all.executedOps, s_base.executedOps);
}

TEST(PerfModel, PowerStaysBelowPhysicalBounds)
{
    const ModelConfig model = makeConfig(Benchmark::DiT, Scale::Full);
    ExionPerfModel pm(exion24(), Ablation::All);
    const RunStats stats = pm.run(model, profileFor(Benchmark::DiT));
    // On-chip power cannot exceed 24 fully-active DSCs (Table III).
    const double onchip_w =
        (stats.energy - stats.dramEnergy) * 1e-12
        / stats.latencySeconds;
    EXPECT_LT(onchip_w, 24 * 1.52);
    // DRAM power cannot exceed full-bandwidth streaming.
    const double dram_w = stats.dramEnergy * 1e-12
        / stats.latencySeconds;
    EXPECT_LT(dram_w, 819.0 * 8.0 * 6.0 * 1e-3 + 1.0);
    EXPECT_GT(stats.avgPowerW(), 0.5);
}

TEST(PerfModel, BiggerDeviceIsFaster)
{
    const ModelConfig model = makeConfig(Benchmark::DiT, Scale::Full);
    const SparsityProfile prof = profileFor(Benchmark::DiT);
    ExionPerfModel small(exion4(), Ablation::All);
    ExionPerfModel large(exion24(), Ablation::All);
    EXPECT_GT(small.run(model, prof).latencySeconds,
              large.run(model, prof).latencySeconds);
}

TEST(PerfModel, BatchEightCostsMoreThanBatchOne)
{
    const ModelConfig model = makeConfig(Benchmark::MDM, Scale::Full);
    const SparsityProfile prof = profileFor(Benchmark::MDM);
    ExionPerfModel pm(exion4(), Ablation::All);
    const RunStats b1 = pm.run(model, prof, 1);
    const RunStats b8 = pm.run(model, prof, 8);
    EXPECT_GT(b8.latencySeconds, b1.latencySeconds);
    // But batching amortises: not 8x slower per sample.
    EXPECT_LT(b8.latencySeconds, 8.0 * b1.latencySeconds);
}

TEST(PerfModel, SparsityMultipliesDenseEquivalentEfficiency)
{
    // Skipped work shows up as dense-equivalent TOPS/W beyond what
    // the Base configuration reaches (the Fig. 18 mechanism).
    const ModelConfig model = makeConfig(Benchmark::MDM, Scale::Full);
    const SparsityProfile prof = profileFor(Benchmark::MDM);
    ExionPerfModel all(exion4(), Ablation::All);
    ExionPerfModel base(exion4(), Ablation::Base);
    const RunStats s_all = all.run(model, prof);
    const RunStats s_base = base.run(model, prof);
    // Fig. 18's own MDM ablation gain is ~1.33x (687x vs 515x over
    // the edge GPU); weight streaming bounds the benefit at batch 1.
    EXPECT_GT(s_all.topsPerWatt(), 1.3 * s_base.topsPerWatt());
    EXPECT_GT(s_all.effectiveTops(), 1.2 * s_base.effectiveTops());
}

TEST(PerfModel, EnergyComponentsSumToTotal)
{
    const ModelConfig model = makeConfig(Benchmark::EDGE, Scale::Full);
    ExionPerfModel pm(exion4(), Ablation::All);
    const RunStats s = pm.run(model, profileFor(Benchmark::EDGE));
    const EnergyPj sum = s.sdueEnergy + s.epreEnergy + s.cfseEnergy
        + s.cauEnergy + s.memEnergy + s.ctrlEnergy + s.dramEnergy;
    EXPECT_NEAR(sum, s.energy, s.energy * 1e-9);
}

} // namespace
} // namespace exion
