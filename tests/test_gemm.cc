/**
 * @file
 * GEMM backend tests: the Blocked backend must be bit-identical to
 * Reference over adversarial shapes (degenerate, prime, block-boundary
 * straddling, paper-scale tall cohort stacks), and the golden kernels
 * themselves must agree with each other under NaN/Inf and signed-zero
 * payloads now that matmul() no longer skips zero contributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "exion/common/rng.h"
#include "exion/tensor/gemm.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/**
 * Bitwise equality, NaN-tolerant: two matrices whose storage bytes
 * match exactly. Matrix::operator== would report NaN != NaN.
 */
bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols()
        && (a.size() == 0
            || std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)) == 0);
}

/** Random matrix with exact zeros sprinkled in (the former zero-skip
    territory) and an occasional negative zero. */
Matrix
randomMatrix(Index rows, Index cols, Rng &rng)
{
    Matrix m(rows, cols);
    m.fillUniform(rng, -2.0f, 2.0f);
    for (Index i = 0; i < m.size(); ++i) {
        const double u = rng.uniform();
        if (u < 0.15)
            m.data()[i] = 0.0f;
        else if (u < 0.18)
            m.data()[i] = -0.0f;
    }
    return m;
}

struct Shape
{
    Index m, k, n;
};

/**
 * Adversarial shape set: degenerate edges, primes that divide
 * nothing, dims straddling the blocking parameters (64 rows /
 * 128 panel columns), and the tall stacked-cohort GEMMs the Blocked
 * backend exists for (N members x 8 tokens against d x d and
 * d x 4d weight panels).
 */
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},     {5, 1, 3},     {1, 257, 1},
    {0, 4, 3},    {4, 0, 3},     {4, 3, 0},
    {3, 7, 13},   {13, 31, 7},   {31, 13, 3},   {17, 19, 23},
    {63, 16, 127}, {64, 17, 128}, {65, 18, 129}, {128, 64, 256},
    {128, 256, 256}, {64, 256, 1024},
};

TEST(GemmBackendTest, NameParseRoundTrip)
{
    EXPECT_STREQ(gemmBackendName(GemmBackend::Reference), "reference");
    EXPECT_STREQ(gemmBackendName(GemmBackend::Blocked), "blocked");
    EXPECT_EQ(parseGemmBackend("reference"), GemmBackend::Reference);
    EXPECT_EQ(parseGemmBackend("blocked"), GemmBackend::Blocked);
    EXPECT_FALSE(parseGemmBackend("naive").has_value());
    EXPECT_FALSE(parseGemmBackend("").has_value());
}

TEST(GemmBackendTest, ProcessDefaultRoundTrip)
{
    const GemmBackend before = defaultGemmBackend();
    setDefaultGemmBackend(GemmBackend::Blocked);
    EXPECT_EQ(defaultGemmBackend(), GemmBackend::Blocked);
    setDefaultGemmBackend(GemmBackend::Reference);
    EXPECT_EQ(defaultGemmBackend(), GemmBackend::Reference);
    setDefaultGemmBackend(before);
}

/** ops.h matmul() must follow the process default. */
TEST(GemmBackendTest, OpsEntryPointsDispatchOnDefault)
{
    Rng rng(11);
    const Matrix a = randomMatrix(9, 65, rng);
    const Matrix b = randomMatrix(65, 130, rng);
    const GemmBackend before = defaultGemmBackend();
    setDefaultGemmBackend(GemmBackend::Blocked);
    const Matrix via_default = matmul(a, b);
    setDefaultGemmBackend(before);
    EXPECT_TRUE(bitIdentical(
        via_default, matmulWith(a, b, GemmBackend::Blocked)));
    EXPECT_TRUE(bitIdentical(
        via_default, matmulWith(a, b, GemmBackend::Reference)));
}

TEST(GemmBackendTest, MatmulBlockedBitIdenticalAcrossShapes)
{
    Rng rng(101);
    for (const Shape &s : kShapes) {
        SCOPED_TRACE(::testing::Message()
                     << s.m << "x" << s.k << " * " << s.k << "x" << s.n);
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        EXPECT_TRUE(bitIdentical(
            matmulWith(a, b, GemmBackend::Reference),
            matmulWith(a, b, GemmBackend::Blocked)));
    }
}

TEST(GemmBackendTest, MatmulTransposedBlockedBitIdenticalAcrossShapes)
{
    Rng rng(102);
    for (const Shape &s : kShapes) {
        SCOPED_TRACE(::testing::Message()
                     << s.m << "x" << s.k << " * (" << s.n << "x" << s.k
                     << ")^T");
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.n, s.k, rng);
        EXPECT_TRUE(bitIdentical(
            matmulTransposedWith(a, b, GemmBackend::Reference),
            matmulTransposedWith(a, b, GemmBackend::Blocked)));
    }
}

TEST(GemmBackendTest, MatmulQuantBlockedBitIdenticalAcrossShapes)
{
    Rng rng(103);
    for (const Shape &s : kShapes) {
        if (s.m == 0 || s.k == 0 || s.n == 0)
            continue; // QuantMatrix::fromFloat needs data for a scale
        SCOPED_TRACE(::testing::Message()
                     << s.m << "x" << s.k << " * " << s.k << "x" << s.n);
        Matrix a(s.m, s.k), b(s.k, s.n);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
        const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
        EXPECT_TRUE(bitIdentical(
            matmulQuantWith(qa, qb, GemmBackend::Reference),
            matmulQuantWith(qa, qb, GemmBackend::Blocked)));
    }
}

/** Special-value payloads must survive blocking bit for bit too. */
TEST(GemmBackendTest, BlockedBitIdenticalWithNanInfPayloads)
{
    Rng rng(104);
    Matrix a = randomMatrix(67, 131, rng);
    Matrix b = randomMatrix(131, 129, rng);
    a(0, 0) = kNan;
    a(3, 70) = kInf;
    a(66, 1) = -kInf;
    a(12, 12) = -0.0f;
    b(5, 5) = kNan;
    b(130, 128) = kInf;
    b(64, 64) = -0.0f;
    EXPECT_TRUE(bitIdentical(matmulWith(a, b, GemmBackend::Reference),
                             matmulWith(a, b, GemmBackend::Blocked)));
    Matrix bt = transpose(b);
    EXPECT_TRUE(bitIdentical(
        matmulTransposedWith(a, bt, GemmBackend::Reference),
        matmulTransposedWith(a, bt, GemmBackend::Blocked)));
}

// ---------------------------------------------------------------------
// Zero-skip regression: matmul() used to drop a == 0.0f contributions
// while matmulTransposed() computed them, so the two golden kernels
// disagreed whenever a zero activation met a NaN/Inf weight. They must
// now agree bit for bit on every input.
// ---------------------------------------------------------------------

TEST(GemmZeroSkipRegressionTest, ZeroTimesNanPropagates)
{
    // A zero activation against a NaN weight is NaN under IEEE
    // semantics (0 * NaN = NaN); the old skip silently produced 0.
    Matrix a(1, 2);
    a(0, 0) = 0.0f;
    a(0, 1) = 1.0f;
    Matrix b(2, 1);
    b(0, 0) = kNan;
    b(1, 0) = 3.0f;
    for (GemmBackend backend :
         {GemmBackend::Reference, GemmBackend::Blocked}) {
        SCOPED_TRACE(gemmBackendName(backend));
        const Matrix c = matmulWith(a, b, backend);
        EXPECT_TRUE(std::isnan(c(0, 0)));
    }
}

TEST(GemmZeroSkipRegressionTest, ZeroTimesInfPropagates)
{
    // 0 * inf = NaN; -0 * -inf = NaN. Both rows were skipped before.
    Matrix a(2, 1);
    a(0, 0) = 0.0f;
    a(1, 0) = -0.0f;
    Matrix b(1, 2);
    b(0, 0) = kInf;
    b(0, 1) = -kInf;
    for (GemmBackend backend :
         {GemmBackend::Reference, GemmBackend::Blocked}) {
        SCOPED_TRACE(gemmBackendName(backend));
        const Matrix c = matmulWith(a, b, backend);
        EXPECT_TRUE(std::isnan(c(0, 0)));
        EXPECT_TRUE(std::isnan(c(0, 1)));
        EXPECT_TRUE(std::isnan(c(1, 0)));
        EXPECT_TRUE(std::isnan(c(1, 1)));
    }
}

TEST(GemmZeroSkipRegressionTest, MatmulAgreesWithTransposedOnNanInf)
{
    // A * B must equal A * (B^T)^T bit for bit even when the operands
    // carry NaN, +/-inf and -0.0 — the divergence the old zero-skip
    // introduced between the two golden kernels.
    Rng rng(105);
    Matrix a = randomMatrix(11, 13, rng);
    Matrix b = randomMatrix(13, 9, rng);
    a(0, 5) = 0.0f;
    a(7, 2) = -0.0f;
    b(5, 3) = kNan;
    b(2, 8) = kInf;
    b(2, 0) = -kInf;
    b(11, 4) = -0.0f;
    const Matrix bt = transpose(b);
    for (GemmBackend backend :
         {GemmBackend::Reference, GemmBackend::Blocked}) {
        SCOPED_TRACE(gemmBackendName(backend));
        EXPECT_TRUE(bitIdentical(matmulWith(a, b, backend),
                                 matmulTransposedWith(a, bt, backend)));
    }
}

TEST(GemmZeroSkipRegressionTest, SignedZeroAccumulationAgrees)
{
    // Accumulators start at +0.0f in both kernels, so a column of
    // sign-flipping zero products and exactly-cancelling pairs must
    // land on bitwise-equal (including the sign bit) outputs.
    Matrix a(3, 4);
    a(0, 0) = -0.0f; a(0, 1) = 0.0f;  a(0, 2) = -0.0f; a(0, 3) = 0.0f;
    a(1, 0) = 1.0f;  a(1, 1) = -1.0f; a(1, 2) = 0.0f;  a(1, 3) = -0.0f;
    a(2, 0) = -1.0f; a(2, 1) = -1.0f; a(2, 2) = 1.0f;  a(2, 3) = 1.0f;
    Matrix b(4, 2);
    b(0, 0) = 5.0f;  b(0, 1) = -5.0f;
    b(1, 0) = 5.0f;  b(1, 1) = -5.0f;
    b(2, 0) = -3.0f; b(2, 1) = 3.0f;
    b(3, 0) = -0.0f; b(3, 1) = -0.0f;
    const Matrix bt = transpose(b);
    const Matrix c = matmul(a, b);
    const Matrix ct = matmulTransposed(a, bt);
    EXPECT_TRUE(bitIdentical(c, ct));
    // Row 0 is all signed zeros against finite weights: the sum of
    // +/-0.0 terms from a +0.0 start is +0.0, never -0.0.
    EXPECT_EQ(c(0, 0), 0.0f);
    EXPECT_FALSE(std::signbit(c(0, 0)));
    EXPECT_FALSE(std::signbit(c(0, 1)));
    // Row 1: 1*5 + (-1)*5 cancels to +0.0 in both kernels.
    EXPECT_EQ(c(1, 0), 0.0f);
    EXPECT_EQ(std::signbit(c(1, 0)), std::signbit(ct(1, 0)));
}

} // namespace
} // namespace exion
