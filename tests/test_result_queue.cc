/**
 * @file
 * Unit tests for the ResultQueue: FIFO delivery, non-blocking /
 * bounded / blocking pops, cross-thread handoff, close semantics,
 * bounded-capacity backpressure (tryPush / blocking push), close
 * while a producer is blocked, and multi-producer/multi-consumer
 * stress.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "exion/serve/result_queue.h"

namespace exion
{
namespace
{

RequestResult
makeResult(u64 id)
{
    RequestResult r;
    r.id = id;
    return r;
}

TEST(ResultQueue, DeliversInFifoOrder)
{
    ResultQueue q;
    for (u64 id = 0; id < 5; ++id)
        q.push(makeResult(id));
    EXPECT_EQ(q.size(), 5u);
    for (u64 id = 0; id < 5; ++id) {
        const auto r = q.tryPop();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->id, id);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(ResultQueue, TryPopOnEmptyReturnsNullopt)
{
    ResultQueue q;
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(ResultQueue, PopForTimesOutOnEmpty)
{
    ResultQueue q;
    const auto r = q.popFor(std::chrono::milliseconds(1));
    EXPECT_FALSE(r.has_value());
}

TEST(ResultQueue, BlockingPopReceivesCrossThreadPush)
{
    ResultQueue q;
    std::thread producer([&q]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.push(makeResult(42));
    });
    const auto r = q.pop();
    producer.join();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, 42u);
}

TEST(ResultQueue, CloseWakesBlockedConsumer)
{
    ResultQueue q;
    std::thread closer([&q]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.close();
    });
    // Would block forever without the close.
    const auto r = q.pop();
    closer.join();
    EXPECT_FALSE(r.has_value());
    EXPECT_TRUE(q.closed());
}

TEST(ResultQueue, CloseStillServesQueuedResults)
{
    ResultQueue q;
    q.push(makeResult(1));
    q.push(makeResult(2));
    q.close();
    EXPECT_EQ(q.pop()->id, 1u);
    EXPECT_EQ(q.popFor(std::chrono::milliseconds(1))->id, 2u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(ResultQueue, PushAfterCloseIsDropped)
{
    ResultQueue q;
    q.close();
    q.push(makeResult(9));
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(ResultQueue, CloseIsIdempotent)
{
    ResultQueue q;
    q.close();
    q.close();
    EXPECT_TRUE(q.closed());
}

TEST(ResultQueue, BoundedCapacityKeepsFifoOrder)
{
    ResultQueue q(/*capacity=*/3);
    EXPECT_EQ(q.capacity(), 3u);
    for (u64 id = 0; id < 3; ++id)
        EXPECT_EQ(q.tryPush(makeResult(id)), ResultQueue::PushResult::Ok);
    EXPECT_EQ(q.tryPush(makeResult(99)), ResultQueue::PushResult::Full);
    EXPECT_EQ(q.size(), 3u);

    // Draining and refilling interleaved stays FIFO.
    EXPECT_EQ(q.tryPop()->id, 0u);
    EXPECT_EQ(q.tryPush(makeResult(3)), ResultQueue::PushResult::Ok);
    for (u64 id = 1; id <= 3; ++id)
        EXPECT_EQ(q.tryPop()->id, id);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(ResultQueue, TryPushOnFullLeavesResultIntact)
{
    ResultQueue q(/*capacity=*/1);
    EXPECT_EQ(q.tryPush(makeResult(1)), ResultQueue::PushResult::Ok);
    RequestResult spare = makeResult(7);
    spare.error = "still mine";
    EXPECT_EQ(q.tryPush(std::move(spare)), ResultQueue::PushResult::Full);
    // Not moved from: the caller can retry or fall back to push().
    EXPECT_EQ(spare.id, 7u);
    EXPECT_EQ(spare.error, "still mine");
}

TEST(ResultQueue, TryPushOnClosedReportsClosed)
{
    ResultQueue q(/*capacity=*/2);
    q.close();
    EXPECT_EQ(q.tryPush(makeResult(1)), ResultQueue::PushResult::Closed);
    EXPECT_EQ(q.size(), 0u);
}

TEST(ResultQueue, BlockingPushWaitsForSpace)
{
    ResultQueue q(/*capacity=*/1);
    EXPECT_EQ(q.push(makeResult(1)), ResultQueue::PushResult::Ok);

    std::atomic<bool> pushed{false};
    std::thread producer([&]() {
        EXPECT_EQ(q.push(makeResult(2)), ResultQueue::PushResult::Ok);
        pushed = true;
    });
    // The producer must be blocked while the queue is full.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop()->id, 1u); // frees the slot
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop()->id, 2u);
}

TEST(ResultQueue, CloseWakesBlockedPusher)
{
    ResultQueue q(/*capacity=*/1);
    EXPECT_EQ(q.push(makeResult(1)), ResultQueue::PushResult::Ok);

    std::atomic<bool> returned{false};
    std::thread producer([&]() {
        // Blocked on the full queue; close() must wake it and the
        // result is dropped, not enqueued over capacity.
        EXPECT_EQ(q.push(makeResult(2)), ResultQueue::PushResult::Closed);
        returned = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(returned.load());
    q.close();
    producer.join();
    EXPECT_TRUE(returned.load());
    // Only the pre-close result remains, then the closed signal.
    EXPECT_EQ(q.pop()->id, 1u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(ResultQueue, MultiProducerMultiConsumerStress)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr u64 kPerProducer = 64;
    ResultQueue q(/*capacity=*/8); // far smaller than the traffic

    std::mutex seen_mutex;
    std::vector<u64> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&]() {
            while (auto r = q.pop()) {
                std::lock_guard<std::mutex> lock(seen_mutex);
                seen.push_back(r->id);
            }
        });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&q, p]() {
            for (u64 i = 0; i < kPerProducer; ++i) {
                const u64 id = static_cast<u64>(p) * kPerProducer + i;
                EXPECT_EQ(q.push(makeResult(id)),
                          ResultQueue::PushResult::Ok);
            }
        });

    for (auto &t : producers)
        t.join();
    q.close(); // consumers drain the leftovers, then exit on nullopt
    for (auto &t : consumers)
        t.join();

    // Every result delivered exactly once, none lost to the bound.
    ASSERT_EQ(seen.size(), kProducers * kPerProducer);
    std::sort(seen.begin(), seen.end());
    for (u64 id = 0; id < kProducers * kPerProducer; ++id)
        EXPECT_EQ(seen[id], id);
}

} // namespace
} // namespace exion
