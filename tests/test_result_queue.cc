/**
 * @file
 * Unit tests for the ResultQueue: FIFO delivery, non-blocking /
 * bounded / blocking pops, cross-thread handoff and close semantics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "exion/serve/result_queue.h"

namespace exion
{
namespace
{

RequestResult
makeResult(u64 id)
{
    RequestResult r;
    r.id = id;
    return r;
}

TEST(ResultQueue, DeliversInFifoOrder)
{
    ResultQueue q;
    for (u64 id = 0; id < 5; ++id)
        q.push(makeResult(id));
    EXPECT_EQ(q.size(), 5u);
    for (u64 id = 0; id < 5; ++id) {
        const auto r = q.tryPop();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->id, id);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(ResultQueue, TryPopOnEmptyReturnsNullopt)
{
    ResultQueue q;
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(ResultQueue, PopForTimesOutOnEmpty)
{
    ResultQueue q;
    const auto r = q.popFor(std::chrono::milliseconds(1));
    EXPECT_FALSE(r.has_value());
}

TEST(ResultQueue, BlockingPopReceivesCrossThreadPush)
{
    ResultQueue q;
    std::thread producer([&q]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.push(makeResult(42));
    });
    const auto r = q.pop();
    producer.join();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, 42u);
}

TEST(ResultQueue, CloseWakesBlockedConsumer)
{
    ResultQueue q;
    std::thread closer([&q]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.close();
    });
    // Would block forever without the close.
    const auto r = q.pop();
    closer.join();
    EXPECT_FALSE(r.has_value());
    EXPECT_TRUE(q.closed());
}

TEST(ResultQueue, CloseStillServesQueuedResults)
{
    ResultQueue q;
    q.push(makeResult(1));
    q.push(makeResult(2));
    q.close();
    EXPECT_EQ(q.pop()->id, 1u);
    EXPECT_EQ(q.popFor(std::chrono::milliseconds(1))->id, 2u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(ResultQueue, PushAfterCloseIsDropped)
{
    ResultQueue q;
    q.close();
    q.push(makeResult(9));
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(ResultQueue, CloseIsIdempotent)
{
    ResultQueue q;
    q.close();
    q.close();
    EXPECT_TRUE(q.closed());
}

} // namespace
} // namespace exion
