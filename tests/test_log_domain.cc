/**
 * @file
 * Tests for the log-domain arithmetic of the EPRE (Fig. 5a / 15).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "exion/common/rng.h"
#include "exion/metrics/metrics.h"
#include "exion/sparsity/log_domain.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(LdProduct, PaperFig15Example)
{
    // 3 x 5 = 15. LOD: 2 x 4 = 8. TS-LOD: (2+1)(4+1) = 15 (exact here).
    EXPECT_EQ(ldProduct(3, 5, LodMode::Single), 8);
    EXPECT_EQ(ldProduct(3, 5, LodMode::TwoStep), 15);
}

TEST(LdProduct, PaperFig5MacExample)
{
    // Fig. 5(a): inputs {2, 3}, weights {5, 3}: expected 19,
    // LOD-predicted 12 (2*5 -> 8, 3*3 -> 4).
    const i64 lod = ldProduct(2, 5, LodMode::Single)
        + ldProduct(3, 3, LodMode::Single);
    EXPECT_EQ(lod, 12);
}

TEST(LdProduct, ZeroAndSigns)
{
    EXPECT_EQ(ldProduct(0, 17, LodMode::Single), 0);
    EXPECT_EQ(ldProduct(17, 0, LodMode::TwoStep), 0);
    EXPECT_EQ(ldProduct(-3, 5, LodMode::TwoStep), -15);
    EXPECT_EQ(ldProduct(3, -5, LodMode::TwoStep), -15);
    EXPECT_EQ(ldProduct(-3, -5, LodMode::TwoStep), 15);
}

TEST(LdProduct, ZeroOperandsAreSafeInBothModes)
{
    // The kNoLeadingOne sentinel (-1) must never reach a shift: every
    // zero-operand combination is exactly zero, in both LOD depths.
    // (Run under UBSan in CI, this is the shift-by-negative guard.)
    for (const LodMode mode : {LodMode::Single, LodMode::TwoStep}) {
        EXPECT_EQ(ldProduct(0, 0, mode), 0);
        EXPECT_EQ(ldProduct(0, 1, mode), 0);
        EXPECT_EQ(ldProduct(1, 0, mode), 0);
        EXPECT_EQ(ldProduct(0, -2048, mode), 0);
        EXPECT_EQ(ldProduct(-2048, 0, mode), 0);
    }
}

TEST(LdProduct, ExtremeMagnitudesDoNotOverflow)
{
    // Leading-one position 31 on both operands shifts by 62 — the
    // widest shift the datapath can produce; it must stay in i64.
    const i32 min32 = std::numeric_limits<i32>::min();
    EXPECT_EQ(ldProduct(min32, 1, LodMode::Single),
              -(i64{1} << 31));
    EXPECT_EQ(ldProduct(min32, min32, LodMode::Single), i64{1} << 62);
    EXPECT_GT(ldProduct(min32, min32, LodMode::TwoStep), 0);
}

TEST(LdMatmul, AllZeroOperandsYieldZeroOutput)
{
    // An all-zero tile quantises to scale 1.0 with every entry 0; the
    // LD MMUL must propagate exact zeros (no sentinel leakage).
    Rng rng(3);
    Matrix zero(5, 7), dense(7, 4);
    dense.fillNormal(rng, 0.0f, 1.0f);
    for (const LodMode mode : {LodMode::Single, LodMode::TwoStep}) {
        const Matrix za = ldMatmulFloat(zero, dense, mode);
        for (Index i = 0; i < za.size(); ++i)
            EXPECT_EQ(za.data()[i], 0.0f);
        const Matrix zb =
            ldMatmulFloat(transpose(dense), transpose(zero), mode);
        for (Index i = 0; i < zb.size(); ++i)
            EXPECT_EQ(zb.data()[i], 0.0f);
    }
}

TEST(LdMatmul, SparseOperandRowsStayExactZero)
{
    // Rows zeroed by upstream skip decisions must contribute exact
    // zeros through the log-domain path.
    Rng rng(11);
    Matrix a(6, 8), b(8, 5);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (Index c = 0; c < a.cols(); ++c) {
        a(0, c) = 0.0f;
        a(3, c) = 0.0f;
    }
    for (const LodMode mode : {LodMode::Single, LodMode::TwoStep}) {
        const Matrix out = ldMatmulFloat(a, b, mode);
        for (Index j = 0; j < out.cols(); ++j) {
            EXPECT_EQ(out(0, j), 0.0f);
            EXPECT_EQ(out(3, j), 0.0f);
        }
    }
}

TEST(LdProduct, PowersOfTwoAreExact)
{
    for (i32 a : {1, 2, 4, 64, 1024})
        for (i32 b : {1, 8, 256})
            EXPECT_EQ(ldProduct(a, b, LodMode::Single),
                      static_cast<i64>(a) * b);
}

/** Property: TS-LOD dominates LOD and never overshoots. */
class LdProductProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LdProductProperty, BoundsHold)
{
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const i32 a = static_cast<i32>(rng.uniformInt(4096)) - 2048;
        const i32 b = static_cast<i32>(rng.uniformInt(4096)) - 2048;
        const i64 exact = static_cast<i64>(a) * b;
        const i64 lod = ldProduct(a, b, LodMode::Single);
        const i64 ts = ldProduct(a, b, LodMode::TwoStep);
        // Same sign (or zero), monotone in approximation depth,
        // never exceeding the exact magnitude.
        EXPECT_LE(std::abs(lod), std::abs(exact));
        EXPECT_LE(std::abs(ts), std::abs(exact));
        EXPECT_GE(std::abs(ts), std::abs(lod));
        if (exact != 0) {
            EXPECT_GE(exact > 0 ? lod : -lod, 0);
            // LOD keeps at least 1/4 of magnitude, TS-LOD at least
            // 9/16 (both factors keep >= 1/2 resp. 3/4).
            EXPECT_GE(4 * std::abs(lod) + 4, std::abs(exact));
            EXPECT_GE(16 * std::abs(ts) + 16, 9 * std::abs(exact));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LdProductProperty,
                         ::testing::Range(0, 8));

TEST(LdMatmul, TwoStepMoreAccurateThanSingle)
{
    Rng rng(13);
    Matrix a(12, 24), b(24, 10);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const Matrix exact = matmul(a, b);
    const Matrix lod = ldMatmulFloat(a, b, LodMode::Single);
    const Matrix ts = ldMatmulFloat(a, b, LodMode::TwoStep);
    const double err_lod = relativeError(exact, lod);
    const double err_ts = relativeError(exact, ts);
    EXPECT_LT(err_ts, err_lod);
    EXPECT_LT(err_ts, 0.25);
    // The prediction must preserve ranking structure (that is all the
    // EP decision needs): strong cosine alignment with the truth.
    EXPECT_GT(cosineSimilarity(exact, ts), 0.95);
    EXPECT_GT(cosineSimilarity(exact, lod), 0.8);
}

TEST(LdMatmul, TransposedConsistent)
{
    Rng rng(17);
    Matrix a(6, 16), b(9, 16);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    const QuantMatrix qbt = QuantMatrix::fromFloat(transpose(b),
                                                   qb.params());
    const Matrix via_t = ldMatmulTransposed(qa, qb, LodMode::TwoStep);
    const Matrix direct = ldMatmul(qa, qbt, LodMode::TwoStep);
    EXPECT_LT(maxAbsDiff(via_t, direct), 1e-5);
}

} // namespace
} // namespace exion
