/**
 * @file
 * Text-to-motion scenario (the paper's MLD/MDM workloads).
 *
 * Generates a batch of motion latents under all four Table I
 * variants, reports quality, achieved sparsity, and the EP projection
 * skips — the end-to-end software story of the paper on its
 * motivating application.
 */

#include <iostream>
#include <vector>

#include "exion/common/table.h"
#include "exion/metrics/frechet.h"
#include "exion/metrics/metrics.h"
#include "exion/model/pipeline.h"
#include "exion/sparsity/sparse_executor.h"

using namespace exion;

namespace
{

struct VariantSpec
{
    const char *name;
    bool ffnr;
    bool ep;
    bool quant;
};

} // namespace

int
main()
{
    ModelConfig cfg = makeConfig(Benchmark::MDM, Scale::Reduced);
    cfg.iterations = 50;
    DiffusionPipeline pipeline(cfg);
    const int batch = 4;

    std::vector<Matrix> reference;
    for (int i = 0; i < batch; ++i) {
        DenseExecutor exec;
        reference.push_back(pipeline.run(exec, 40 + i));
    }
    FrechetProxy proxy(cfg.latentTokens * cfg.latentDim, 16);

    const VariantSpec variants[] = {
        {"FFN-Reuse", true, false, false},
        {"FFN-Reuse+EP", true, true, false},
        {"FFN-Reuse+EP+Quant", true, true, true},
    };

    TextTable table({"Variant", "PSNR (dB)", "FD-proxy", "InterSp",
                     "IntraSp", "Q skip", "KV skip", "Work"});
    table.setTitle("Text-to-motion (MDM reduced, " +
                   std::to_string(batch) + " motions)");

    for (const VariantSpec &v : variants) {
        SparseExecutor exec(SparseExecutor::fromConfig(
            cfg, v.ffnr, v.ep, v.quant));
        std::vector<Matrix> outputs;
        for (int i = 0; i < batch; ++i)
            outputs.push_back(pipeline.run(exec, 40 + i));
        const ExecStats &s = exec.stats();
        const double q_skip = s.qRowsTotal
            ? static_cast<double>(s.qRowsSkipped) / s.qRowsTotal : 0.0;
        const double kv_skip = s.kColsTotal
            ? static_cast<double>(s.kColsSkipped + s.vColsSkipped)
                / (s.kColsTotal + s.vColsTotal)
            : 0.0;
        table.addRow({
            v.name,
            formatDouble(psnr(reference[0], outputs[0]), 1),
            formatDouble(proxy.distance(reference, outputs), 3),
            s.ffnSparsitySamples
                ? formatPercent(s.meanFfnSparsity(), 0) : "-",
            s.scoreSparsitySamples
                ? formatPercent(s.meanScoreSparsity(), 0) : "-",
            formatPercent(q_skip, 0),
            formatPercent(kv_skip, 0),
            formatPercent(static_cast<double>(s.totalExecuted())
                          / s.totalDense(), 1),
        });
    }
    table.addNote("Work = executed transformer ops / dense ops.");
    table.print();
    return 0;
}
