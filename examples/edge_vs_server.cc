/**
 * @file
 * Deployment study: the same workloads on EXION4 (edge) and EXION24
 * (server) against their GPU counterparts — the Fig. 18/19 story as
 * an API walkthrough.
 */

#include <iostream>

#include "exion/accel/perf_model.h"
#include "exion/baseline/gpu_model.h"
#include "exion/common/table.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "Device", "Latency (ms)", "Energy (J)",
                     "TOPS/W", "vs GPU latency", "vs GPU energy"});
    table.setTitle("Edge vs server deployment (batch 1, full scale)");

    const struct
    {
        ExionConfig device;
        GpuSpec gpu;
        Benchmark benchmark;
    } setups[] = {
        {exion4(), edgeGpu(), Benchmark::MLD},
        {exion4(), edgeGpu(), Benchmark::EDGE},
        {exion24(), serverGpu(), Benchmark::DiT},
        {exion24(), serverGpu(), Benchmark::StableDiffusion},
    };

    for (const auto &setup : setups) {
        const ModelConfig model = makeConfig(setup.benchmark,
                                             Scale::Full);
        GpuModel gpu(setup.gpu);
        const GpuRunResult gpu_run = gpu.run(model, 1);

        ExionPerfModel pm(setup.device, Ablation::All);
        const RunStats stats = pm.run(model,
                                      profileFor(setup.benchmark), 1);

        table.addRow({
            benchmarkName(setup.benchmark),
            setup.gpu.name,
            formatDouble(gpu_run.latencySeconds * 1e3, 1),
            formatDouble(gpu_run.energyJ, 2),
            formatDouble(gpu_run.topsPerWatt(), 4),
            "1.0x",
            "1.0x",
        });
        table.addRow({
            "",
            setup.device.name + "_All",
            formatDouble(stats.latencySeconds * 1e3, 1),
            formatDouble(stats.energy * 1e-12, 3),
            formatDouble(stats.topsPerWatt(), 2),
            formatRatio(gpu_run.latencySeconds / stats.latencySeconds,
                        1),
            formatRatio(gpu_run.energyJ / (stats.energy * 1e-12), 1),
        });
    }
    table.addNote("Energy ratio equals the TOPS/W gain (same "
                  "dense-equivalent work).");
    table.print();
    return 0;
}
