/**
 * @file
 * Command-line explorer: run any benchmark x device x ablation.
 *
 * Usage:
 *   exion_cli [--model NAME] [--device exion4|exion24|exion42]
 *             [--ablation base|ep|ffnr|all] [--batch N] [--gpu]
 *
 * Prints latency, energy, efficiency, and work reduction; with --gpu
 * also runs the matched GPU baseline and prints the gains. Without
 * arguments, sweeps all benchmarks on EXION24_All.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "exion/accel/perf_model.h"
#include "exion/baseline/gpu_model.h"
#include "exion/common/table.h"
#include "exion/tensor/kernel_flags.h"

using namespace exion;

namespace
{

Benchmark
parseModel(const std::string &name)
{
    for (Benchmark b : allBenchmarks())
        if (benchmarkName(b) == name)
            return b;
    EXION_FATAL("unknown model '", name,
                "' (try MLD, MDM, EDGE, Make-an-Audio, "
                "StableDiffusion, DiT, VideoCrafter2)");
}

ExionConfig
parseDevice(const std::string &name)
{
    if (name == "exion4")
        return exion4();
    if (name == "exion24")
        return exion24();
    if (name == "exion42")
        return exion42();
    EXION_FATAL("unknown device '", name,
                "' (exion4, exion24, exion42)");
}

Ablation
parseAblation(const std::string &name)
{
    if (name == "base")
        return Ablation::Base;
    if (name == "ep")
        return Ablation::Ep;
    if (name == "ffnr")
        return Ablation::Ffnr;
    if (name == "all")
        return Ablation::All;
    EXION_FATAL("unknown ablation '", name,
                "' (base, ep, ffnr, all)");
}

void
addRunRow(TextTable &table, Benchmark b, const ExionConfig &device,
          Ablation ablation, int batch, bool with_gpu)
{
    const ModelConfig model = makeConfig(b, Scale::Full);
    ExionPerfModel pm(device, ablation);
    const RunStats stats = pm.run(model, profileFor(b), batch);

    std::string lat_gain = "-", energy_gain = "-";
    if (with_gpu) {
        const GpuSpec spec =
            device.numDscs <= 4 ? edgeGpu() : serverGpu();
        GpuModel gpu(spec);
        const GpuRunResult gpu_run = gpu.run(model, batch);
        lat_gain = formatRatio(
            gpu_run.latencySeconds / stats.latencySeconds, 1);
        energy_gain = formatRatio(
            gpu_run.energyJ / (stats.energy * 1e-12), 1);
    }
    table.addRow({
        benchmarkName(b),
        device.name + "_" + ablationName(ablation),
        std::to_string(batch),
        formatDouble(stats.latencySeconds * 1e3, 2),
        formatDouble(stats.energy * 1e-12, 4),
        formatDouble(stats.topsPerWatt(), 2),
        formatPercent(static_cast<double>(stats.executedOps)
                          / static_cast<double>(stats.denseOps),
                      1),
        lat_gain,
        energy_gain,
    });
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name;
    std::string device_name = "exion24";
    std::string ablation_name = "all";
    int batch = 1;
    bool with_gpu = false;
    KernelFlags kernels;

    for (int i = 1; i < argc; ++i) {
        std::string kernel_err;
        const KernelFlagStatus ks =
            tryConsumeKernelFlag(argc, argv, i, kernels, kernel_err);
        if (ks == KernelFlagStatus::Error)
            EXION_FATAL(kernel_err);
        if (ks == KernelFlagStatus::Consumed)
            continue;
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                EXION_FATAL("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--model")
            model_name = next();
        else if (arg == "--device")
            device_name = next();
        else if (arg == "--ablation")
            ablation_name = next();
        else if (arg == "--batch")
            batch = std::stoi(next());
        else if (arg == "--gpu")
            with_gpu = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: exion_cli [--model NAME] "
                      << "[--device exion4|exion24|exion42]\n"
                      << "                 [--ablation base|ep|ffnr|"
                      << "all] [--batch N] [--gpu]\n"
                      << "                 " << kernelFlagsUsage()
                      << "\n";
            return 0;
        } else {
            EXION_FATAL("unknown argument ", arg);
        }
    }

    // Process-wide: every dense MMUL / kernel of the runs below
    // dispatches on these. --gemm is bit-identical across backends;
    // --simd scalar|exact are bit-identical, fast is tolerance-level.
    setDefaultGemmBackend(kernels.gemm);
    setDefaultSimdTier(kernels.simd);
    if (kernels.tp > 1)
        std::cout << "note: --tp " << kernels.tp
                  << " accepted but inert here — the explorer runs "
                     "the analytical perf model, not real GEMMs "
                     "(use exion_serve / serve_batch / bench_serve)\n";

    const ExionConfig device = parseDevice(device_name);
    const Ablation ablation = parseAblation(ablation_name);

    TextTable table({"Model", "Config", "Batch", "Latency (ms)",
                     "Energy (J)", "TOPS/W", "Work", "vs GPU lat",
                     "vs GPU energy"});
    table.setTitle("EXION explorer");

    if (model_name.empty()) {
        for (Benchmark b : allBenchmarks())
            addRunRow(table, b, device, ablation, batch, with_gpu);
    } else {
        addRunRow(table, parseModel(model_name), device, ablation,
                  batch, with_gpu);
    }
    table.addNote("Work = executed ops / dense-equivalent ops.");
    table.print();
    return 0;
}
