/**
 * @file
 * Quickstart: run a diffusion model vanilla and with EXION's
 * software-level optimisations, compare outputs and work.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "exion/metrics/metrics.h"
#include "exion/model/pipeline.h"
#include "exion/sparsity/sparse_executor.h"

using namespace exion;

int
main()
{
    // 1. Pick a benchmark at the reduced (functional) scale. The zoo
    //    carries the paper's seven workloads; DiT is the class-to-
    //    image diffusion transformer.
    ModelConfig cfg = makeConfig(Benchmark::DiT, Scale::Reduced);
    cfg.iterations = 50;

    // 2. Build the pipeline: denoising network + DDIM scheduler.
    DiffusionPipeline pipeline(cfg);

    // 3. Vanilla run — the accuracy reference.
    DenseExecutor vanilla;
    const Matrix reference = pipeline.run(vanilla, /*noise_seed=*/7);

    // 4. EXION run — FFN-Reuse + eager prediction with TS-LOD, using
    //    the Table I configuration embedded in the model config.
    SparseExecutor exion(SparseExecutor::fromConfig(
        cfg, /*ffn_reuse=*/true, /*ep=*/true, /*quantize=*/false));
    const Matrix output = pipeline.run(exion, /*noise_seed=*/7);

    // 5. Compare quality and work.
    const ExecStats &stats = exion.stats();
    std::cout << "model:            " << cfg.name << " ("
              << cfg.iterations << " iterations)\n";
    std::cout << "PSNR vs vanilla:  " << psnr(reference, output)
              << " dB\n";
    std::cout << "cosine sim:       "
              << cosineSimilarity(reference, output) << "\n";
    std::cout << "inter-iter sparsity (FFN-Reuse): "
              << stats.meanFfnSparsity() * 100.0 << " %\n";
    std::cout << "intra-iter sparsity (EP scores): "
              << stats.meanScoreSparsity() * 100.0 << " %\n";
    std::cout << "transformer ops executed: "
              << static_cast<double>(stats.totalExecuted())
              << " of " << static_cast<double>(stats.totalDense())
              << " dense-equivalent ("
              << 100.0 * stats.totalExecuted() / stats.totalDense()
              << " %)\n";
    return 0;
}
