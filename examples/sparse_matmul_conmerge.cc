/**
 * @file
 * ConMerge walkthrough on a real output-sparse MMUL.
 *
 * Captures a live FFN-Reuse recompute mask from a diffusion run,
 * pushes it through condensing + sorting + merging, executes the
 * merged tiles on the functional SDUE, and verifies the result against
 * the dense reference — the full hardware datapath of Figs. 8-14 in
 * one program.
 */

#include <iostream>

#include "exion/accel/functional_device.h"
#include "exion/common/rng.h"
#include "exion/model/pipeline.h"
#include "exion/sparsity/sparse_executor.h"
#include "exion/tensor/ops.h"

using namespace exion;

int
main()
{
    // 1. Capture a recompute mask from a short diffusion run.
    ModelConfig cfg = makeTinyConfig(/*tokens=*/48, /*d_model=*/64,
                                     /*n_blocks=*/1, /*iterations=*/4);
    cfg.ffnReuse = {3, 0.93};
    DiffusionPipeline pipeline(cfg);
    SparseExecutor exec(
        SparseExecutor::fromConfig(cfg, true, false, false));
    Bitmask2D mask;
    exec.observers.onFfnMask = [&](int, const Bitmask2D &m, bool dense) {
        if (!dense && mask.rows() == 0)
            mask = m;
    };
    pipeline.run(exec, 3);
    std::cout << "captured FFN recompute mask: " << mask.rows() << " x "
              << mask.cols() << ", sparsity "
              << mask.sparsity() * 100.0 << " %\n";

    // 2. Random operands for the sparse MMUL.
    Rng rng(11);
    Matrix input(mask.rows(), 64), weight(64, mask.cols());
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);

    // 3. ConMerge + SDUE execution.
    const SparseMatmulResult result =
        sparseMatmulViaConMerge(input, weight, mask);

    std::cout << "condensing:  " << mask.cols() << " columns -> "
              << result.conStats.matrixNonEmptyColumns
              << " non-empty ("
              << result.conStats.condenseRemainingFraction() * 100.0
              << " % remain)\n";
    std::cout << "merging:     "
              << result.conStats.entriesAfterCondense
              << " column slices -> " << result.conStats.positionsUsed
              << " physical columns ("
              << result.conStats.mergedRemainingFraction() * 100.0
              << " % of original)\n";
    std::cout << "tiles:       " << result.conStats.tiles
              << " merged tiles, " << result.conStats.mergeCycles
              << " CVG cycles\n";
    std::cout << "SDUE:        " << result.sdueStats.cycles
              << " cycles, active DPU fraction "
              << result.sdueStats.activeFraction() * 100.0 << " %\n";

    // 4. Verify against the dense reference.
    const Matrix reference = matmul(input, weight);
    double max_err = 0.0;
    for (Index r = 0; r < mask.rows(); ++r)
        for (Index c = 0; c < mask.cols(); ++c)
            if (mask.get(r, c))
                max_err = std::max(
                    max_err, std::abs(static_cast<double>(
                                 result.output(r, c))
                                 - reference(r, c)));
    std::cout << "max |error| at computed positions: " << max_err
              << (max_err < 1e-3 ? "  (exact)" : "  (MISMATCH!)")
              << "\n";
    return max_err < 1e-3 ? 0 : 1;
}
