/**
 * @file
 * Admission-controlled asynchronous serving of a mixed request
 * stream: text-to-image (StableDiffusion) and text-to-motion (MLD)
 * requests with different execution modes, seeds and priority
 * classes, submitted through trySubmit() under an AdmissionConfig
 * that sheds best-effort overload, drained in completion order — no
 * batch barrier — and summarised with an EngineMetrics snapshot.
 * With --shards N the same stream is served by a snapshot-routed
 * ShardRouter over N engines instead of one (--route picks the
 * placement policy); nothing downstream changes — both are the same
 * ServeBackend surface, and the bit-exact self-check holds under
 * every placement.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build
 *   ./build/examples/serve_batch [--shards N] [--route POLICY]
 */

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exion/serve/batch_engine.h"
#include "exion/serve/shard_router.h"
#include "exion/tensor/kernel_flags.h"

using namespace exion;

namespace
{

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onSignal(int sig)
{
    g_signal = sig;
}

} // namespace

int
main(int argc, char **argv)
{
    // SIGINT/SIGTERM drain gracefully instead of killing mid-batch:
    // the handler only raises a flag; the drain loop below notices
    // it, lets the engine finish what it accepted, and exits cleanly.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // --gemm selects the engine's GEMM backend (default Blocked) and
    // --simd its kernel tier (default Exact). Outputs are
    // bit-identical for every backend and for the scalar/exact tiers
    // — the self-checks below hold regardless — only wall clock
    // changes (fast is tolerance-level and would trip the bit-exact
    // check, which is itself a useful probe).
    KernelFlags kernels;
    int shards = 1;
    RoutePolicy route = RoutePolicy::LeastDepth;
    for (int i = 1; i < argc; ++i) {
        std::string err;
        const KernelFlagStatus ks =
            tryConsumeKernelFlag(argc, argv, i, kernels, err);
        if (ks == KernelFlagStatus::Error) {
            std::cerr << "error: " << err << "\n";
            return 1;
        }
        if (ks == KernelFlagStatus::Consumed)
            continue;
        const KernelFlagStatus rs =
            tryConsumeRouteFlag(argc, argv, i, route, err);
        if (rs == KernelFlagStatus::Error) {
            std::cerr << "error: " << err << "\n";
            return 1;
        }
        if (rs == KernelFlagStatus::Consumed)
            continue;
        const std::string arg = argv[i];
        if (arg == "--shards" && i + 1 < argc) {
            shards = std::atoi(argv[++i]);
            if (shards < 1) {
                std::cerr << "error: --shards must be >= 1\n";
                return 1;
            }
        } else {
            std::cerr << "error: unknown argument '" << arg
                      << "' (usage: serve_batch [--shards N] "
                      << routeFlagUsage() << " " << kernelFlagsUsage()
                      << ")\n";
            return 1;
        }
    }
    // 1. Register the models once; weights are shared by every
    //    request for that benchmark. The admission policy is part of
    //    the engine options: per-class ready-queue bounds, and a shed
    //    watermark that refuses Low-class work once the total backlog
    //    reaches 12 requests.
    ModelConfig t2i = makeConfig(Benchmark::StableDiffusion,
                                 Scale::Reduced);
    t2i.iterations = 10;
    ModelConfig t2m = makeConfig(Benchmark::MLD, Scale::Reduced);
    t2m.iterations = 10;

    BatchEngine::Options opts;
    opts.workers = 4;
    opts.gemmBackend = kernels.gemm;
    opts.simdTier = kernels.simd;
    opts.tensorParallel = kernels.tp;
    opts.queueResults = false; // completions arrive via the callback
    opts.admission.maxQueuedPerClass = 16;
    opts.admission.shedThreshold = 12;
    opts.admission.shedBelow = Priority::Normal;

    // Solo engine or an N-shard router — the same ServeBackend
    // surface either way, so every step below is placement-agnostic.
    // Admission bounds apply per shard; 4 workers total in both
    // configurations keeps the runs comparable.
    std::unique_ptr<BatchEngine> solo;
    std::unique_ptr<ShardRouter> router;
    if (shards > 1) {
        ShardRouter::Options routerOpts;
        routerOpts.shards = shards;
        routerOpts.shardWorkers = std::max(1, 4 / shards);
        routerOpts.policy = route;
        routerOpts.engine = opts;
        router = std::make_unique<ShardRouter>(routerOpts);
        router->addModel(t2i);
        router->addModel(t2m);
    } else {
        solo = std::make_unique<BatchEngine>(opts);
        solo->addModel(t2i);
        solo->addModel(t2m);
    }
    ServeBackend &engine = router
        ? static_cast<ServeBackend &>(*router)
        : static_cast<ServeBackend &>(*solo);

    // Completion-order drain without a batch barrier: the backend's
    // completion callback feeds a local queue (cancelled requests
    // never fire it, but this stream cancels nothing).
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::deque<RequestResult> doneQueue;
    engine.setOnComplete([&](const RequestResult &r) {
        {
            std::lock_guard<std::mutex> lock(doneMutex);
            doneQueue.push_back(r);
        }
        doneCv.notify_one();
    });

    // 2. A mixed request stream: alternating workloads, a vanilla
    //    reference sprinkled in, per-request seeds, and a priority
    //    mix — the slow dense requests ride in the Low class so they
    //    never hold up interactive traffic.
    std::vector<ServeRequest> stream;
    for (int i = 0; i < 8; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = i % 2 == 0 ? Benchmark::StableDiffusion
                                   : Benchmark::MLD;
        req.mode = i % 4 == 3 ? ExecMode::Dense : ExecMode::Exion;
        req.noiseSeed = 1000 + static_cast<u64>(i);
        req.trackConMerge = req.mode == ExecMode::Exion;
        req.priority = req.mode == ExecMode::Dense ? Priority::Low
                                                   : Priority::High;
        stream.push_back(req);
    }

    // 3. Submit through the admission boundary. The engine is paused
    //    while the burst lands so the overload below is
    //    deterministic; a live service would skip the pause and let
    //    shedding track the real backlog.
    engine.pause();
    std::map<u64, const ServeRequest *> by_id;
    u64 accepted = 0;
    for (const ServeRequest &req : stream) {
        const SubmitOutcome outcome = engine.trySubmit(req);
        if (!outcome.accepted()) {
            std::cout << "request " << req.id << " rejected: "
                      << rejectReasonName(*outcome.reason) << "\n";
            continue;
        }
        ++accepted;
        by_id[req.id] = &req;
    }

    // 4. Pile a burst of best-effort extras on top: once the total
    //    backlog reaches the shed watermark, Low-class work is
    //    refused with LoadShedLow instead of growing the queue.
    u64 extras_accepted = 0, extras_shed = 0;
    for (int i = 0; i < 12; ++i) {
        ServeRequest extra;
        extra.id = 100 + static_cast<u64>(i);
        extra.benchmark = Benchmark::MLD;
        extra.mode = ExecMode::Exion;
        extra.noiseSeed = 2000 + static_cast<u64>(i);
        extra.priority = Priority::Low;
        const SubmitOutcome outcome = engine.trySubmit(extra);
        if (outcome.accepted()) {
            ++extras_accepted;
            continue;
        }
        ++extras_shed;
    }
    engine.resume();

    std::cout << "\nstreaming " << accepted << " stream + "
              << extras_accepted << " extra requests over "
              << engine.workerCount() << " workers";
    if (router)
        std::cout << " in " << router->shardCount() << " shards ("
                  << routePolicyName(route) << " routing)";
    std::cout << " (" << extras_shed
              << " extras shed at the watermark)\n\n";
    std::cout << std::left << std::setw(4) << "id" << std::setw(16)
              << "model" << std::setw(8) << "mode" << std::setw(10)
              << "priority" << std::setw(12) << "ops saved"
              << std::setw(12) << "merged cols" << "seconds\n";

    // 5. Drain completions in whatever order the scheduler finishes
    //    them; only the labelled core stream is printed in detail.
    //    The timed wait keeps the loop responsive to SIGINT/SIGTERM:
    //    on a signal the backend drains what it accepted (shutdown
    //    runs — never abandons — admitted work) and the run ends
    //    with a partial summary instead of a killed process.
    bool interrupted = false;
    std::map<u64, RequestResult> results;
    const u64 expected = accepted + extras_accepted;
    for (u64 drained = 0; drained < expected; ++drained) {
        std::optional<RequestResult> popped;
        while (!popped.has_value()) {
            if (g_signal != 0 && !interrupted) {
                interrupted = true;
                std::cout << "\nsignal " << static_cast<int>(g_signal)
                          << ": draining in-flight requests...\n";
                engine.shutdown();
            }
            {
                std::unique_lock<std::mutex> lock(doneMutex);
                doneCv.wait_for(lock, std::chrono::milliseconds(200),
                                [&]() { return !doneQueue.empty(); });
                if (!doneQueue.empty()) {
                    popped = std::move(doneQueue.front());
                    doneQueue.pop_front();
                }
            }
            if (!popped.has_value() && interrupted
                && engine.inFlight() == 0)
                break;
        }
        if (!popped.has_value())
            break; // everything delivered after the drain
        const RequestResult &r = *popped;
        const auto req_it = by_id.find(r.id);
        if (req_it == by_id.end())
            continue; // an extra: counted in the snapshot below
        const ServeRequest &req = *req_it->second;
        const double saved = r.stats.totalDense() == 0 ? 0.0
            : 1.0
                - static_cast<double>(r.stats.totalExecuted())
                    / static_cast<double>(r.stats.totalDense());
        std::cout << std::left << std::setw(4) << r.id << std::setw(16)
                  << benchmarkName(req.benchmark) << std::setw(8)
                  << execModeName(req.mode) << std::setw(10)
                  << priorityName(req.priority) << std::setw(12)
                  << (std::to_string(
                          static_cast<int>(100.0 * saved + 0.5))
                      + " %");
        if (req.trackConMerge)
            std::cout << std::setw(12)
                      << (std::to_string(static_cast<int>(
                              100.0
                                  * r.conmerge.mergedRemainingFraction()
                              + 0.5))
                          + " %");
        else
            std::cout << std::setw(12) << "-";
        std::cout << std::fixed << std::setprecision(3) << r.seconds
                  << "\n";
        const u64 id = r.id;
        results.emplace(id, std::move(*popped));
    }
    engine.waitIdle();
    engine.setOnComplete(nullptr); // the local queue dies with main()

    // 6. The engine's own accounting of the run: per-class admission
    //    outcomes and queue behaviour, straight from snapshot().
    const EngineMetrics m = engine.snapshot();
    std::cout << "\n" << std::left << std::setw(10) << "class"
              << std::setw(10) << "accepted" << std::setw(8) << "shed"
              << std::setw(10) << "rejected" << std::setw(11)
              << "completed" << "peak queue\n";
    for (int c = 0; c < kNumPriorityClasses; ++c) {
        const ClassMetrics &cm = m.perClass[c];
        if (cm.accepted == 0 && cm.rejected() == 0)
            continue;
        std::cout << std::left << std::setw(10)
                  << priorityName(static_cast<Priority>(c))
                  << std::setw(10) << cm.accepted << std::setw(8)
                  << cm.shed << std::setw(10)
                  << (cm.rejected() - cm.shed) << std::setw(11)
                  << cm.completed << cm.peakQueued << "\n";
    }
    std::cout << "queue wait p50/p99: " << std::fixed
              << std::setprecision(1) << m.queueWaitP50 * 1e3 << "/"
              << m.queueWaitP99 * 1e3 << " ms over "
              << m.queueWaitSamples << " starts\n";

    // An interrupted run stops here: the engine has drained, the
    // partial summary above is honest, and the reference re-run
    // below would need an engine that is now shut down.
    if (interrupted) {
        std::cout << "\ninterrupted: " << results.size() << "/"
                  << expected << " results drained before exit\n";
        return 130;
    }

    // 7. Every streamed result is bit-identical to its single-stream
    //    run, regardless of the completion order (or shard placement)
    //    above — and the snapshot reconciles with what the submitter
    //    observed. Any shard serves as the reference: they share one
    //    copy of the weights.
    const auto sequential = router
        ? router->shard(0).runSequential(stream)
        : solo->runSequential(stream);
    bool identical = results.size() == stream.size();
    for (Index i = 0; identical && i < sequential.size(); ++i) {
        const RequestResult &streamed = results.at(stream[i].id);
        identical &= streamed.ok()
            && streamed.output.size() == sequential[i].output.size();
        for (Index e = 0; identical && e < sequential[i].output.size();
             ++e)
            identical &= streamed.output.data()[e]
                == sequential[i].output.data()[e];
    }
    // Accepted/completed reconcile exactly under any placement; the
    // shed counter is per-shard — a shard that refused while another
    // shard accepted still counted its own refusal — so the exact
    // caller-observed match only holds for the solo engine.
    const bool reconciled = m.accepted() == accepted + extras_accepted
        && m.completed() == accepted + extras_accepted
        && (router ? m.shed() >= extras_shed
                   : m.shed() == extras_shed);
    std::cout << "\nasync == sequential (bit-exact): "
              << (identical ? "yes" : "NO")
              << "\nsnapshot reconciles with observed outcomes: "
              << (reconciled ? "yes" : "NO") << "\n";
    return identical && reconciled ? 0 : 1;
}
