/**
 * @file
 * Asynchronous serving of a mixed request stream: text-to-image
 * (StableDiffusion) and text-to-motion (MLD) requests with different
 * execution modes, seeds and priority classes, submitted continuously
 * to the BatchEngine and drained from its ResultQueue as they
 * complete — no batch barrier.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build
 *   ./build/examples/serve_batch
 */

#include <iomanip>
#include <iostream>
#include <map>

#include "exion/serve/batch_engine.h"

using namespace exion;

int
main()
{
    // 1. Register the models once; weights are shared by every
    //    request for that benchmark.
    ModelConfig t2i = makeConfig(Benchmark::StableDiffusion,
                                 Scale::Reduced);
    t2i.iterations = 10;
    ModelConfig t2m = makeConfig(Benchmark::MLD, Scale::Reduced);
    t2m.iterations = 10;

    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(t2i);
    engine.addModel(t2m);

    // 2. A mixed request stream: alternating workloads, a vanilla
    //    reference sprinkled in, per-request seeds, and a priority
    //    mix — the slow dense requests ride in the Low class so they
    //    never hold up interactive traffic.
    std::vector<ServeRequest> stream;
    for (int i = 0; i < 8; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = i % 2 == 0 ? Benchmark::StableDiffusion
                                   : Benchmark::MLD;
        req.mode = i % 4 == 3 ? ExecMode::Dense : ExecMode::Exion;
        req.noiseSeed = 1000 + static_cast<u64>(i);
        req.trackConMerge = req.mode == ExecMode::Exion;
        req.priority = req.mode == ExecMode::Dense ? Priority::Low
                                                   : Priority::High;
        stream.push_back(req);
    }

    // 3. Submit everything up front — submit() returns immediately —
    //    then stream completions out of the ResultQueue in whatever
    //    order the scheduler finishes them.
    std::map<u64, const ServeRequest *> by_id;
    for (const ServeRequest &req : stream) {
        engine.submit(req);
        by_id[req.id] = &req;
    }

    std::cout << "streaming " << stream.size() << " requests over "
              << engine.workerCount() << " workers\n\n";
    std::cout << std::left << std::setw(4) << "id" << std::setw(16)
              << "model" << std::setw(8) << "mode" << std::setw(10)
              << "priority" << std::setw(12) << "ops saved"
              << std::setw(12) << "merged cols" << "seconds\n";

    std::map<u64, RequestResult> results;
    while (results.size() < stream.size()) {
        auto popped = engine.results().pop();
        if (!popped.has_value())
            break; // queue closed (not expected here)
        const RequestResult &r = *popped;
        const ServeRequest &req = *by_id.at(r.id);
        const double saved = r.stats.totalDense() == 0 ? 0.0
            : 1.0
                - static_cast<double>(r.stats.totalExecuted())
                    / static_cast<double>(r.stats.totalDense());
        std::cout << std::left << std::setw(4) << r.id << std::setw(16)
                  << benchmarkName(req.benchmark) << std::setw(8)
                  << execModeName(req.mode) << std::setw(10)
                  << priorityName(req.priority) << std::setw(12)
                  << (std::to_string(
                          static_cast<int>(100.0 * saved + 0.5))
                      + " %");
        if (req.trackConMerge)
            std::cout << std::setw(12)
                      << (std::to_string(static_cast<int>(
                              100.0
                                  * r.conmerge.mergedRemainingFraction()
                              + 0.5))
                          + " %");
        else
            std::cout << std::setw(12) << "-";
        std::cout << std::fixed << std::setprecision(3) << r.seconds
                  << "\n";
        const u64 id = r.id;
        results.emplace(id, std::move(*popped));
    }

    // 4. Every streamed result is bit-identical to its single-stream
    //    run, regardless of the completion order above.
    const auto sequential = engine.runSequential(stream);
    bool identical = results.size() == stream.size();
    for (Index i = 0; identical && i < sequential.size(); ++i) {
        const RequestResult &streamed = results.at(stream[i].id);
        identical &= streamed.ok()
            && streamed.output.size() == sequential[i].output.size();
        for (Index e = 0; identical && e < sequential[i].output.size();
             ++e)
            identical &= streamed.output.data()[e]
                == sequential[i].output.data()[e];
    }
    std::cout << "\nasync == sequential (bit-exact): "
              << (identical ? "yes" : "NO") << "\n";
    return identical ? 0 : 1;
}
