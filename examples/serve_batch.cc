/**
 * @file
 * Batched serving of a mixed request stream: text-to-image
 * (StableDiffusion) and text-to-motion (MLD) requests with different
 * execution modes and seeds, scheduled across a worker pool by the
 * BatchEngine.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build
 *   ./build/examples/serve_batch
 */

#include <iomanip>
#include <iostream>

#include "exion/serve/batch_engine.h"

using namespace exion;

int
main()
{
    // 1. Register the models once; weights are shared by every
    //    request for that benchmark.
    ModelConfig t2i = makeConfig(Benchmark::StableDiffusion,
                                 Scale::Reduced);
    t2i.iterations = 10;
    ModelConfig t2m = makeConfig(Benchmark::MLD, Scale::Reduced);
    t2m.iterations = 10;

    BatchEngine::Options opts;
    opts.workers = 4;
    BatchEngine engine(opts);
    engine.addModel(t2i);
    engine.addModel(t2m);

    // 2. A mixed request stream: alternating workloads, a vanilla
    //    reference sprinkled in, per-request seeds.
    std::vector<ServeRequest> batch;
    for (int i = 0; i < 8; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = i % 2 == 0 ? Benchmark::StableDiffusion
                                   : Benchmark::MLD;
        req.mode = i % 4 == 3 ? ExecMode::Dense : ExecMode::Exion;
        req.noiseSeed = 1000 + static_cast<u64>(i);
        req.trackConMerge = req.mode == ExecMode::Exion;
        batch.push_back(req);
    }

    // 3. Serve the batch across the workers.
    const auto results = engine.runBatch(batch);

    std::cout << "served " << results.size() << " requests on "
              << engine.workerCount() << " workers\n\n";
    std::cout << std::left << std::setw(4) << "id" << std::setw(16)
              << "model" << std::setw(8) << "mode" << std::setw(12)
              << "ops saved" << std::setw(12) << "merged cols"
              << "seconds\n";
    for (Index i = 0; i < results.size(); ++i) {
        const RequestResult &r = results[i];
        const ServeRequest &req = batch[i];
        const double saved = r.stats.totalDense() == 0 ? 0.0
            : 1.0
                - static_cast<double>(r.stats.totalExecuted())
                    / static_cast<double>(r.stats.totalDense());
        std::cout << std::left << std::setw(4) << r.id << std::setw(16)
                  << benchmarkName(req.benchmark) << std::setw(8)
                  << execModeName(req.mode) << std::setw(12)
                  << (std::to_string(
                          static_cast<int>(100.0 * saved + 0.5))
                      + " %");
        if (req.trackConMerge)
            std::cout << std::setw(12)
                      << (std::to_string(static_cast<int>(
                              100.0
                                  * r.conmerge.mergedRemainingFraction()
                              + 0.5))
                          + " %");
        else
            std::cout << std::setw(12) << "-";
        std::cout << std::fixed << std::setprecision(3) << r.seconds
                  << "\n";
    }

    // 4. Every result is bit-identical to its single-stream run.
    const auto sequential = engine.runSequential(batch);
    bool identical = true;
    for (Index i = 0; i < results.size(); ++i)
        for (Index e = 0; e < results[i].output.size(); ++e)
            identical &= results[i].output.data()[e]
                == sequential[i].output.data()[e];
    std::cout << "\nbatched == sequential (bit-exact): "
              << (identical ? "yes" : "NO") << "\n";
    return identical ? 0 : 1;
}
