/**
 * @file
 * exion_serve — the HTTP serving daemon.
 *
 * Boots a BatchEngine over serialized EXWS weight stores (or built-in
 * seeded models), mounts the HttpFront REST API on an HttpServer and
 * runs until SIGINT/SIGTERM, then drains gracefully: the listener
 * closes first (new connections refused, streaming clients
 * disconnected), then every request the engine already accepted runs
 * to completion before the process exits.
 *
 * Usage:
 *   exion_serve [--port N] [--models DIR] [--builtin NAME[,NAME...]]
 *               [--scale full|reduced] [--iterations N]
 *               [--pin-weights] [--workers N]
 *               [--shards N] [--shard-workers N] [--route POLICY]
 *               [--numa]
 *               [--max-queued N] [--shed-threshold N]
 *               [--block-timeout SECONDS] [--sse-heartbeat SECONDS]
 *               [--gemm <backend>] [--simd <tier>]
 *
 *   --port N          listen port on 127.0.0.1 (default 8080;
 *                     0 = ephemeral, the chosen port is printed)
 *   --models DIR      register every *.exws store in DIR
 *                     (exion_convert writes them)
 *   --builtin NAMES   comma-separated benchmark names to build
 *                     in-process instead of loading from disk
 *   --scale           model scale for --builtin (default reduced)
 *   --iterations N    denoising-iteration override for --builtin
 *   --pin-weights     mlock() loaded stores (best-effort; a failed
 *                     pin warns and serves unpinned)
 *   --workers N       engine worker threads (default: hardware;
 *                     ignored when --shards > 1 — see --shard-workers)
 *   --shards N        replica shards: N BatchEngines sharing the
 *                     same weight stores behind a snapshot-routed
 *                     ShardRouter (default 1 = solo engine)
 *   --shard-workers N worker threads per shard (default: hardware
 *                     split evenly across shards)
 *   --route POLICY    placement policy: least-depth (default),
 *                     deadline-aware, cohort-affinity
 *   --numa            pin shard workers round-robin across NUMA
 *                     nodes (best-effort; warns and serves unpinned
 *                     when the host has no topology). With --tp > 1
 *                     it additionally pins each slice's tasks to one
 *                     node's CPUs (slice s -> node s % nodes), so a
 *                     slice's weight-column working set stays local;
 *                     the chosen map is printed at startup.
 *   --tp N            intra-request tensor parallelism: column-split
 *                     every tall projection GEMM into N slices run
 *                     across the engine's workers and merged in
 *                     slice order — bit-identical to --tp 1
 *                     (default 1 = off)
 *   --max-queued N    admission: ready-queue bound per priority
 *                     class (QueueFull -> HTTP 429; default 16)
 *   --shed-threshold N admission: total backlog at which Low-class
 *                     work is shed (LoadShedLow -> HTTP 503;
 *                     default 0 = shedding off)
 *   --block-timeout S admission: block this long for a queue slot
 *                     before rejecting (default 0 = reject at once)
 *   --sse-heartbeat S SSE heartbeat interval (default 5)
 *
 * The API itself is documented in serve/http_front.h; README.md has
 * curl examples.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>

#include "exion/common/numa.h"
#include "exion/model/config.h"
#include "exion/net/http_server.h"
#include "exion/serve/batch_engine.h"
#include "exion/serve/http_front.h"
#include "exion/serve/shard_router.h"
#include "exion/tensor/kernel_flags.h"

namespace
{

using namespace exion;

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--models DIR] [--builtin NAME[,...]]\n"
        "          [--scale full|reduced] [--iterations N]\n"
        "          [--pin-weights] [--workers N] [--max-queued N]\n"
        "          [--shards N] [--shard-workers N] [--route POLICY]\n"
        "          [--numa] [--shed-threshold N]\n"
        "          [--block-timeout SECONDS]\n"
        "          [--sse-heartbeat SECONDS] %s\n",
        argv0, kernelFlagsUsage());
    return 2;
}

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

bool
parseBenchmark(const std::string &name, Benchmark &out)
{
    for (Benchmark b : allBenchmarks()) {
        if (iequals(name, benchmarkName(b))) {
            out = b;
            return true;
        }
    }
    return false;
}

/** All *.exws files under dir, sorted for deterministic registration. */
std::vector<std::string>
storeFiles(const std::string &dir)
{
    std::vector<std::string> files;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return files;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() > 5
            && name.compare(name.size() - 5, 5, ".exws") == 0)
            files.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    int port = 8080;
    std::string modelDir;
    std::string builtin;
    Scale scale = Scale::Reduced;
    int iterations = 0;
    bool pinWeights = false;
    int shards = 1;
    int shardWorkers = 0;
    RoutePolicy route = RoutePolicy::LeastDepth;
    bool numa = false;
    KernelFlags kernels;
    BatchEngine::Options engineOpts;
    engineOpts.admission.maxQueuedPerClass = 16;
    // The HTTP front observes completions through tickets and the
    // completion callback; an unread result queue would only hold
    // every output alive.
    engineOpts.queueResults = false;
    HttpFront::Options frontOpts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string err;
        const KernelFlagStatus ks =
            tryConsumeKernelFlag(argc, argv, i, kernels, err);
        if (ks == KernelFlagStatus::Error) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 2;
        }
        if (ks == KernelFlagStatus::Consumed)
            continue;
        const KernelFlagStatus rs =
            tryConsumeRouteFlag(argc, argv, i, route, err);
        if (rs == KernelFlagStatus::Error) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 2;
        }
        if (rs == KernelFlagStatus::Consumed)
            continue;
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (arg == "--port" && (v = value()))
            port = std::atoi(v);
        else if (arg == "--models" && (v = value()))
            modelDir = v;
        else if (arg == "--builtin" && (v = value()))
            builtin = v;
        else if (arg == "--scale" && (v = value())) {
            if (iequals(v, "full"))
                scale = Scale::Full;
            else if (iequals(v, "reduced"))
                scale = Scale::Reduced;
            else
                return usage(argv[0]);
        } else if (arg == "--iterations" && (v = value()))
            iterations = std::atoi(v);
        else if (arg == "--pin-weights")
            pinWeights = true;
        else if (arg == "--workers" && (v = value()))
            engineOpts.workers = std::atoi(v);
        else if (arg == "--shards" && (v = value()))
            shards = std::atoi(v);
        else if (arg == "--shard-workers" && (v = value()))
            shardWorkers = std::atoi(v);
        else if (arg == "--numa")
            numa = true;
        else if (arg == "--max-queued" && (v = value()))
            engineOpts.admission.maxQueuedPerClass =
                static_cast<u64>(std::atoll(v));
        else if (arg == "--shed-threshold" && (v = value()))
            engineOpts.admission.shedThreshold =
                static_cast<u64>(std::atoll(v));
        else if (arg == "--block-timeout" && (v = value()))
            engineOpts.admission.blockTimeoutSeconds = std::atof(v);
        else if (arg == "--sse-heartbeat" && (v = value()))
            frontOpts.sseHeartbeatSeconds = std::atof(v);
        else
            return usage(argv[0]);
    }
    if (modelDir.empty() && builtin.empty()) {
        std::fprintf(stderr,
                     "error: no models (need --models DIR and/or "
                     "--builtin NAMES)\n");
        return usage(argv[0]);
    }
    if (port < 0 || port > 65535)
        return usage(argv[0]);
    if (shards < 1) {
        std::fprintf(stderr, "error: --shards must be >= 1\n");
        return 2;
    }
    engineOpts.gemmBackend = kernels.gemm;
    engineOpts.simdTier = kernels.simd;
    engineOpts.tensorParallel = kernels.tp;

    // Slice -> NUMA affinity (best-effort): with both --numa and
    // --tp, slice s's tasks pin to node (s % nodes) so each slice's
    // weight columns stay on one node. Purely a locality knob — the
    // merge order, and therefore the output, is unaffected.
    std::string tpNumaMap;
    if (kernels.tp > 1 && numa) {
        const std::vector<std::vector<int>> nodes = numaNodeCpus();
        if (nodes.size() < 2) {
            std::fprintf(stderr,
                         "warning: --numa --tp: host exposes %zu NUMA "
                         "node(s); slices run unpinned\n",
                         nodes.size());
        } else {
            engineOpts.tpSliceCpus = nodes;
            for (int s = 0; s < kernels.tp; ++s) {
                if (s > 0)
                    tpNumaMap += " ";
                tpNumaMap += "slice" + std::to_string(s) + "->node"
                    + std::to_string(
                        s % static_cast<int>(nodes.size()));
            }
        }
    }

    // One engine when unsharded (no router indirection to pay for),
    // a snapshot-routed ShardRouter otherwise — both serve the same
    // ServeBackend surface, so everything downstream is shared.
    std::unique_ptr<BatchEngine> soloEngine;
    std::unique_ptr<ShardRouter> router;
    if (shards > 1) {
        ShardRouter::Options routerOpts;
        routerOpts.shards = shards;
        routerOpts.shardWorkers = shardWorkers;
        routerOpts.policy = route;
        routerOpts.engine = engineOpts;
        routerOpts.numa = numa;
        router = std::make_unique<ShardRouter>(routerOpts);
    } else {
        if (numa && kernels.tp <= 1)
            std::fprintf(stderr,
                         "warning: --numa has no effect without "
                         "--shards > 1 or --tp > 1\n");
        soloEngine = std::make_unique<BatchEngine>(engineOpts);
    }
    ServeBackend &backend =
        router ? static_cast<ServeBackend &>(*router)
               : static_cast<ServeBackend &>(*soloEngine);
    const auto registerFromFile = [&](const std::string &path) {
        if (router)
            router->registerModelFromFile(path, pinWeights);
        else
            soloEngine->registerModelFromFile(path, pinWeights);
    };
    const auto registerBuiltin = [&](const ModelConfig &cfg) {
        if (router)
            router->addModel(cfg);
        else
            soloEngine->addModel(cfg);
    };

    if (!modelDir.empty()) {
        const std::vector<std::string> files = storeFiles(modelDir);
        if (files.empty()) {
            std::fprintf(stderr, "error: no *.exws stores in %s\n",
                         modelDir.c_str());
            return 1;
        }
        for (const std::string &path : files) {
            registerFromFile(path);
            std::printf("registered %s%s\n", path.c_str(),
                        pinWeights ? " (pin requested)" : "");
        }
    }
    for (size_t at = 0; at < builtin.size();) {
        size_t comma = builtin.find(',', at);
        if (comma == std::string::npos)
            comma = builtin.size();
        const std::string name = builtin.substr(at, comma - at);
        at = comma + 1;
        if (name.empty())
            continue;
        Benchmark b = Benchmark::MLD;
        if (!parseBenchmark(name, b)) {
            std::fprintf(stderr, "error: unknown benchmark '%s'\n",
                         name.c_str());
            return 1;
        }
        ModelConfig cfg = makeConfig(b, scale);
        if (iterations > 0)
            cfg.iterations = iterations;
        registerBuiltin(cfg);
        std::printf("registered built-in %s (%s scale)\n",
                    benchmarkName(b).c_str(),
                    scale == Scale::Full ? "full" : "reduced");
    }

    HttpFront front(backend, frontOpts);
    HttpServer::Options serverOpts;
    serverOpts.port = static_cast<u16>(port);
    HttpServer server(serverOpts,
                      [&front](const HttpRequest &req,
                               ResponseWriter &writer) {
                          front.handle(req, writer);
                      });
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: cannot listen on 127.0.0.1:%d: %s\n",
                     port, e.what());
        return 1;
    }

    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    if (router)
        std::printf("exion_serve listening on 127.0.0.1:%u "
                    "(%d shards x %d workers, route=%s%s, gemm=%s, "
                    "simd=%s, tp=%d)\n",
                    server.port(), router->shardCount(),
                    router->shard(0).workerCount(),
                    routePolicyName(route).c_str(),
                    numa ? ", numa" : "",
                    gemmBackendName(kernels.gemm),
                    simdTierName(kernels.simd), kernels.tp);
    else
        std::printf("exion_serve listening on 127.0.0.1:%u "
                    "(%d workers, gemm=%s, simd=%s, tp=%d)\n",
                    server.port(), backend.workerCount(),
                    gemmBackendName(kernels.gemm),
                    simdTierName(kernels.simd), kernels.tp);
    if (!tpNumaMap.empty())
        std::printf("tp slice affinity: %s\n", tpNumaMap.c_str());
    std::fflush(stdout);

    while (g_signal == 0 && server.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Graceful drain: stop the front door first — the listener
    // closes and streaming clients are disconnected (which cancels
    // their jobs cooperatively) — then run everything the engine
    // already accepted to completion.
    std::printf("\nsignal %d: draining (in-flight: %llu)\n",
                static_cast<int>(g_signal),
                static_cast<unsigned long long>(backend.inFlight()));
    std::fflush(stdout);
    server.stop();
    backend.shutdown();
    const EngineMetrics m = backend.snapshot();
    std::printf("drained: %llu completed, %llu cancelled, "
                "%llu shed, %llu connections served\n",
                static_cast<unsigned long long>(m.completed()),
                static_cast<unsigned long long>(m.cancelled()),
                static_cast<unsigned long long>(m.shed()),
                static_cast<unsigned long long>(
                    server.connectionsAccepted()));
    return 0;
}
