/**
 * @file
 * exion_convert — builds, inspects and verifies EXWS weight stores.
 *
 * A store snapshots the deterministic seeded build of a benchmark's
 * model (float weights, INT12 quantized-at-rest images, transposed
 * FFN1 copies) into one checksummed file that engines mmap read-only
 * and share. Converting is a build-time step; serving then never
 * quantises or transposes a weight again.
 *
 * Usage:
 *   exion_convert --benchmark NAME [--scale full|reduced] --out FILE
 *   exion_convert --all [--scale full|reduced] --outdir DIR
 *   exion_convert --inspect FILE
 *
 * NAME matches benchmarkName() (e.g. MLD, StableDiffusion),
 * case-insensitively. --inspect loads (and therefore fully
 * validates: magic, version, endianness, checksum, index bounds) an
 * existing store and prints its config and tensor index.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exion/model/config.h"
#include "exion/model/weight_store.h"

namespace
{

using namespace exion;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --benchmark NAME [--scale full|reduced] --out FILE\n"
        "       %s --all [--scale full|reduced] --outdir DIR\n"
        "       %s --inspect FILE\n",
        argv0, argv0, argv0);
    return 2;
}

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

bool
parseBenchmark(const std::string &name, Benchmark &out)
{
    for (Benchmark b : allBenchmarks()) {
        if (iequals(name, benchmarkName(b))) {
            out = b;
            return true;
        }
    }
    return false;
}

const char *
kindName(WeightStore::TensorKind kind)
{
    return kind == WeightStore::TensorKind::Float32 ? "f32" : "qint";
}

int
convertOne(Benchmark b, Scale scale, const std::string &path)
{
    const ModelConfig cfg = makeConfig(b, scale);
    const auto store = WeightStore::build(cfg);
    store->save(path);
    std::printf("%-16s -> %s  (%llu tensors, %llu bytes, "
                "checksum %016llx)\n",
                cfg.name.c_str(), path.c_str(),
                static_cast<unsigned long long>(store->entries().size()),
                static_cast<unsigned long long>(store->sizeBytes()),
                static_cast<unsigned long long>(store->checksum()));
    return 0;
}

int
inspect(const std::string &path)
{
    const auto store = WeightStore::load(path);
    const ModelConfig &cfg = store->config();
    std::printf("store:    %s\n", path.c_str());
    std::printf("mapped:   %s\n", store->mapped() ? "yes (mmap)" : "no (heap)");
    std::printf("size:     %llu bytes\n",
                static_cast<unsigned long long>(store->sizeBytes()));
    std::printf("checksum: %016llx\n",
                static_cast<unsigned long long>(store->checksum()));
    std::printf("model:    %s (benchmark %s, %s scale, seed %llu)\n",
                cfg.name.c_str(), benchmarkName(cfg.benchmark).c_str(),
                cfg.scale == Scale::Full ? "full" : "reduced",
                static_cast<unsigned long long>(cfg.seed));
    std::printf("stages:   %zu, iterations %d, latent %lld x %lld\n",
                cfg.stages.size(), cfg.iterations,
                static_cast<long long>(cfg.latentTokens),
                static_cast<long long>(cfg.latentDim));
    std::printf("tensors:  %zu\n", store->entries().size());
    for (const auto &[name, e] : store->entries()) {
        // Largest power-of-two divisor of the section offset, capped
        // at 4096: the alignment the mmap'd tensor actually starts
        // at. The format guarantees >= 64 (one cache line / one EXWS
        // section unit) — what the slice plans in
        // tensor/matmul_slice.h assume.
        const unsigned long long off = e.offset;
        const unsigned long long align =
            off == 0 ? 4096ULL : std::min(4096ULL, off & ~(off - 1));
        std::printf("  %-28s %-4s %6lld x %-6lld @%-10llu "
                    "align%-5llu %llu bytes\n",
                    name.c_str(), kindName(e.kind),
                    static_cast<long long>(e.rows),
                    static_cast<long long>(e.cols), off, align,
                    static_cast<unsigned long long>(e.byteLen));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string benchmark_name;
    std::string out;
    std::string outdir;
    std::string inspect_path;
    Scale scale = Scale::Reduced;
    bool all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark") {
            benchmark_name = next("--benchmark");
        } else if (arg == "--scale") {
            const std::string v = next("--scale");
            if (iequals(v, "full")) {
                scale = Scale::Full;
            } else if (iequals(v, "reduced")) {
                scale = Scale::Reduced;
            } else {
                std::fprintf(stderr, "unknown scale '%s'\n", v.c_str());
                return 2;
            }
        } else if (arg == "--out") {
            out = next("--out");
        } else if (arg == "--outdir") {
            outdir = next("--outdir");
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--inspect") {
            inspect_path = next("--inspect");
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    try {
        if (!inspect_path.empty())
            return inspect(inspect_path);
        if (all) {
            if (outdir.empty()) {
                std::fprintf(stderr, "--all needs --outdir\n");
                return 2;
            }
            for (Benchmark b : allBenchmarks()) {
                const std::string path =
                    outdir + "/" + benchmarkName(b)
                    + (scale == Scale::Full ? "-full" : "-reduced")
                    + ".exws";
                if (const int rc = convertOne(b, scale, path))
                    return rc;
            }
            return 0;
        }
        if (benchmark_name.empty() || out.empty())
            return usage(argv[0]);
        Benchmark b{};
        if (!parseBenchmark(benchmark_name, b)) {
            std::fprintf(stderr, "unknown benchmark '%s'; one of:",
                         benchmark_name.c_str());
            for (Benchmark known : allBenchmarks())
                std::fprintf(stderr, " %s", benchmarkName(known).c_str());
            std::fprintf(stderr, "\n");
            return 2;
        }
        return convertOne(b, scale, out);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "exion_convert: %s\n", e.what());
        return 1;
    }
}
